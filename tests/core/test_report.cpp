#include "core/report.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(Report, Table1LayoutContainsPaperEntries) {
  const NetworkComparison cmp =
      compare_mappers({"sdk", "vw-sdk"}, resnet18_paper(), k512x512);
  const TextTable table = render_table1(cmp.results[0], cmp.results[1]);
  const std::string text = table.render();
  EXPECT_NE(text.find("8x8x3x64"), std::string::npos);     // SDK conv1
  EXPECT_NE(text.find("10x8x3x64"), std::string::npos);    // VW conv1
  EXPECT_NE(text.find("4x3x42x256"), std::string::npos);   // VW conv4
  EXPECT_NE(text.find("3x3x512x512"), std::string::npos);  // fallback row
  EXPECT_NE(text.find("7240"), std::string::npos);         // SDK total
  EXPECT_NE(text.find("4294"), std::string::npos);         // VW total
}

TEST(Report, Table1RejectsMismatchedResults) {
  const NetworkComparison a =
      compare_mappers({"sdk"}, resnet18_paper(), k512x512);
  const NetworkComparison b =
      compare_mappers({"vw-sdk"}, vgg13_paper(), k512x512);
  EXPECT_THROW(render_table1(a.results[0], b.results[0]), InvalidArgument);
}

TEST(Report, LayerSpeedupsBaselineIsFirst) {
  const NetworkComparison cmp =
      compare_mappers({"im2col", "sdk", "vw-sdk"}, resnet18_paper(),
                      k512x512);
  const TextTable table = render_layer_speedups(cmp);
  const std::string text = table.render();
  // im2col column is all 1.00; totals row present.
  EXPECT_NE(text.find("1.00"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
  // ResNet-18 totals: 4.67 (vw) and 2.77 (sdk = 20041/7240).
  EXPECT_NE(text.find("4.67"), std::string::npos);
  EXPECT_NE(text.find("2.77"), std::string::npos);
}

TEST(Report, UtilizationTableHasPaperNumber) {
  const NetworkComparison cmp =
      compare_mappers({"im2col", "sdk", "vw-sdk"}, vgg13_paper(), k512x512);
  const TextTable table =
      render_utilization(cmp, UtilizationConvention::kSteadyState, 6);
  const std::string text = table.render();
  EXPECT_EQ(table.row_count(), 6);
  EXPECT_NE(text.find("73.8"), std::string::npos);  // conv5, VW-SDK
}

TEST(Report, UtilizationRespectsMaxLayers) {
  const NetworkComparison cmp =
      compare_mappers({"im2col"}, vgg13_paper(), k512x512);
  EXPECT_EQ(render_utilization(cmp, UtilizationConvention::kSteadyState, 3)
                .row_count(),
            3);
  EXPECT_EQ(render_utilization(cmp, UtilizationConvention::kSteadyState)
                .row_count(),
            10);
}

}  // namespace
}  // namespace vwsdk
