#include "core/mapper_registry.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/im2col_mapper.h"

namespace vwsdk {
namespace {

/// A trivial out-of-library mapper, self-registered the way a plugin or
/// experiment would do it: a static MapperRegistrar in its own
/// translation unit.
class ToyMapper final : public Mapper {
 public:
  using Mapper::map;
  std::string name() const override { return "toy"; }
  MappingDecision map(const MappingContext& context) const override {
    return Im2colMapper().map(context);
  }
};

const MapperRegistrar kToyRegistrar{MapperInfo{
    "toy",
    {"toy-alias"},
    "test-only mapper (im2col in disguise)",
    MapperCapabilities{},
    9000,
    []() { return std::make_unique<ToyMapper>(); }}};

TEST(MapperRegistry, BuiltinsRegisteredInPaperOrder) {
  const std::vector<std::string> names = MapperRegistry::instance().names();
  // The built-ins lead in the paper's order; externals (like the toy
  // above) sort after them.
  const std::vector<std::string> builtins{
      "im2col", "smd",        "sdk",
      "vw-sdk", "vw-sdk-pruned", "exhaustive",
      "vw-sdk-bitsliced"};
  ASSERT_GE(names.size(), builtins.size());
  for (std::size_t i = 0; i < builtins.size(); ++i) {
    EXPECT_EQ(names[i], builtins[i]);
  }
}

TEST(MapperRegistry, CreateResolvesNamesAndAliasesCaseInsensitively) {
  const MapperRegistry& registry = MapperRegistry::instance();
  EXPECT_EQ(registry.create("vw-sdk")->name(), "vw-sdk");
  EXPECT_EQ(registry.create("vwsdk")->name(), "vw-sdk");
  EXPECT_EQ(registry.create(" VW-SDK ")->name(), "vw-sdk");
  EXPECT_EQ(registry.create("pruned")->name(), "vw-sdk-pruned");
  EXPECT_EQ(registry.create("bitsliced")->name(), "vw-sdk-bitsliced");
  EXPECT_THROW(registry.create("frobnicate"), NotFound);
}

TEST(MapperRegistry, UnknownNameErrorListsTheKnownNames) {
  try {
    (void)MapperRegistry::instance().info("frobnicate");
    FAIL() << "expected NotFound";
  } catch (const NotFound& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("im2col"), std::string::npos) << message;
    EXPECT_NE(message.find("vw-sdk"), std::string::npos) << message;
    EXPECT_NE(message.find("exhaustive"), std::string::npos) << message;
  }
}

TEST(MapperRegistry, CapabilitiesDescribeTheAlgorithms) {
  const MapperRegistry& registry = MapperRegistry::instance();
  EXPECT_FALSE(registry.info("im2col").capabilities.objective_aware);
  EXPECT_TRUE(registry.info("vw-sdk").capabilities.objective_aware);
  EXPECT_TRUE(registry.info("vw-sdk").capabilities.parallel_search);
  EXPECT_FALSE(registry.info("vw-sdk").capabilities.exhaustive);
  EXPECT_TRUE(registry.info("exhaustive").capabilities.exhaustive);
  EXPECT_FALSE(registry.info("vw-sdk-pruned").capabilities.parallel_search);
}

TEST(MapperRegistry, SelfRegistrationViaRegistrar) {
  const MapperRegistry& registry = MapperRegistry::instance();
  ASSERT_TRUE(registry.contains("toy"));
  EXPECT_TRUE(registry.contains("toy-alias"));
  EXPECT_EQ(registry.create("toy-alias")->name(), "toy");
  // known_names() carries it after the built-ins (sort_key 9000).
  const std::string known = registry.known_names();
  EXPECT_NE(known.find("toy"), std::string::npos);
  EXPECT_LT(known.find("im2col"), known.find("toy"));
}

TEST(MapperRegistry, LocalRegistryRejectsDuplicatesAndBadInfo) {
  MapperRegistry registry;
  const auto info = [](const std::string& name,
                       const std::vector<std::string>& aliases) {
    return MapperInfo{name, aliases, "d", MapperCapabilities{}, 0,
                      []() { return std::make_unique<ToyMapper>(); }};
  };
  registry.add(info("a", {"b"}));
  EXPECT_EQ(registry.size(), 1);
  EXPECT_THROW(registry.add(info("a", {})), InvalidArgument);   // name taken
  EXPECT_THROW(registry.add(info("B", {})), InvalidArgument);   // alias taken
  EXPECT_THROW(registry.add(info("", {})), InvalidArgument);    // no name
  EXPECT_THROW(registry.add(info("c", {"c"})), InvalidArgument);  // self-dup
  EXPECT_THROW(registry.add(info("d", {"e", "E"})),
               InvalidArgument);  // repeated alias
  EXPECT_THROW(registry.add(MapperInfo{"c", {}, "d",
                                       MapperCapabilities{}, 0, nullptr}),
               InvalidArgument);                                // no factory
  EXPECT_EQ(registry.size(), 1);
}

TEST(MapperRegistry, MakeMapperIsARegistryShim) {
  EXPECT_EQ(make_mapper("toy")->name(), "toy");
  EXPECT_EQ(make_mapper("vw-sdk")->name(), "vw-sdk");
  EXPECT_THROW(make_mapper("frobnicate"), NotFound);
}

}  // namespace
}  // namespace vwsdk
