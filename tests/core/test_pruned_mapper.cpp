#include "core/pruned_mapper.h"

#include <gtest/gtest.h>

#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

struct PrunedCase {
  Dim image, kernel, ic, oc, rows, cols;
};

class PrunedEquivalence : public ::testing::TestWithParam<PrunedCase> {};

TEST_P(PrunedEquivalence, SameOptimumAndSameWindowAsUnpruned) {
  const PrunedCase& c = GetParam();
  const ConvShape shape = ConvShape::square(c.image, c.kernel, c.ic, c.oc);
  const ArrayGeometry geometry{c.rows, c.cols};
  const MappingDecision pruned = PrunedVwSdkMapper().map(shape, geometry);
  const MappingDecision plain = VwSdkMapper().map(shape, geometry);
  EXPECT_EQ(pruned.cost.total, plain.cost.total);
  // Tie-breaking must also be preserved: same first-minimum window.
  EXPECT_EQ(pruned.cost.window, plain.cost.window);
  EXPECT_EQ(pruned.cost.ic_t, plain.cost.ic_t);
  EXPECT_EQ(pruned.cost.oc_t, plain.cost.oc_t);
}

INSTANTIATE_TEST_SUITE_P(
    LayerSweep, PrunedEquivalence,
    ::testing::Values(PrunedCase{224, 3, 3, 64, 512, 512},
                      PrunedCase{224, 3, 64, 64, 512, 512},
                      PrunedCase{56, 3, 128, 256, 512, 512},
                      PrunedCase{28, 3, 256, 512, 512, 512},
                      PrunedCase{7, 3, 512, 512, 512, 512},
                      PrunedCase{112, 7, 3, 64, 512, 512},
                      PrunedCase{56, 3, 64, 64, 128, 128},
                      PrunedCase{14, 3, 256, 256, 128, 256},
                      PrunedCase{13, 5, 12, 24, 128, 256},
                      PrunedCase{64, 3, 1, 1, 32, 32},
                      PrunedCase{9, 3, 2, 2048, 512, 512},
                      PrunedCase{16, 3, 1024, 16, 256, 128}));

TEST(PrunedMapper, ActuallyPrunes) {
  // On VGG-13 conv1 (224x224, tiny channels) the full scan is ~49k
  // candidates; the prunes must remove the overwhelming majority.
  const ConvShape conv1 = ConvShape::square(224, 3, 3, 64);
  PruneStats stats;
  PrunedVwSdkMapper().map_with_stats(conv1, {512, 512}, &stats);
  const Count full_scan = 222LL * 222 - 1;
  EXPECT_LT(stats.evaluated, full_scan / 10);
  EXPECT_GT(stats.lb_skipped + stats.row_breaks + stats.col_breaks, 0);
}

TEST(PrunedMapper, StatsAddUp) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  PruneStats stats;
  const MappingDecision decision =
      PrunedVwSdkMapper().map_with_stats(conv5, {512, 512}, &stats);
  EXPECT_GT(stats.evaluated, 0);
  EXPECT_EQ(decision.cost.total, 5832);
}

TEST(PrunedMapper, AvailableViaFactory) {
  EXPECT_EQ(make_mapper("vw-sdk-pruned")->name(), "vw-sdk-pruned");
  EXPECT_EQ(make_mapper("pruned")->name(), "vw-sdk-pruned");
}

TEST(PrunedMapper, StridedLayersStillExact) {
  ConvShape strided = ConvShape::square(29, 3, 8, 16);
  strided.stride_w = 2;
  strided.stride_h = 2;
  const MappingDecision pruned = PrunedVwSdkMapper().map(strided, {96, 48});
  const MappingDecision plain = VwSdkMapper().map(strided, {96, 48});
  EXPECT_EQ(pruned.cost.total, plain.cost.total);
  EXPECT_EQ(pruned.cost.window, plain.cost.window);
}

}  // namespace
}  // namespace vwsdk
