#include "core/sdk_mapper.h"

#include <gtest/gtest.h>

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(SdkMapper, Resnet18Conv1Chooses8x8) {
  // γ = 2 (4 duplicates): OC*4 = 256 <= 512 and AR stays 1.
  // γ = 3 (9x9) fails the column constraint: 64*9 = 576 > 512.
  const ConvShape conv1 = ConvShape::square(112, 7, 3, 64);
  EXPECT_EQ(SdkMapper::chosen_gamma(conv1, k512x512), 2);
  const SdkMapper mapper;
  const MappingDecision decision = mapper.map(conv1, k512x512);
  EXPECT_EQ(decision.cost.window, (ParallelWindow{8, 8}));
  EXPECT_EQ(decision.cost.total, 2809);
}

TEST(SdkMapper, ColumnConstraintStopsGrowth) {
  // VGG-13 conv1 (OC=64): rows would allow giant windows (IC=3) but
  // columns cap γ at 2 (5x5 needs 64*9 = 576 > 512 columns).
  const ConvShape conv1 = ConvShape::square(224, 3, 3, 64);
  EXPECT_EQ(SdkMapper::chosen_gamma(conv1, k512x512), 2);
}

TEST(SdkMapper, ArConstraintStopsGrowth) {
  // VGG-13 conv4 (IC=128): a 4x4 window would need AR = 4 > im2col's 3,
  // so SDK cannot form any window -- the paper's "after Layer 3" regime.
  const ConvShape conv4 = ConvShape::square(112, 3, 128, 128);
  EXPECT_EQ(SdkMapper::chosen_gamma(conv4, k512x512), 1);
  const SdkMapper mapper;
  const MappingDecision decision = mapper.map(conv4, k512x512);
  EXPECT_TRUE(decision.is_im2col_fallback());
  EXPECT_EQ(decision.cost.total, 36300);
}

TEST(SdkMapper, ArConstraintAllowsEqualSplit) {
  // VGG-13 conv2 (IC=64): im2col AR = 2 and the 4x4 window also needs
  // AR = 2 (1024 rows over 512) -- allowed, and Table I confirms 4x4.
  const ConvShape conv2 = ConvShape::square(224, 3, 64, 64);
  EXPECT_EQ(SdkMapper::chosen_gamma(conv2, k512x512), 2);
  const SdkMapper mapper;
  EXPECT_EQ(mapper.map(conv2, k512x512).cost.total, 24642);
}

TEST(SdkMapper, WindowCappedByIfmExtent) {
  // 4x4 IFM with a 3x3 kernel: γ = 2 gives a 4x4 window (= the IFM);
  // γ = 3 would exceed the IFM and must be rejected regardless of array.
  const ConvShape tiny = ConvShape::square(4, 3, 1, 1);
  const ArrayGeometry huge{4096, 4096};
  EXPECT_EQ(SdkMapper::chosen_gamma(tiny, huge), 2);
}

TEST(SdkMapper, NonSquareKernelFallsBackToIm2col) {
  ConvShape rect = ConvShape::square(16, 3, 4, 8);
  rect.kernel_w = 5;
  const SdkMapper mapper;
  const MappingDecision decision = mapper.map(rect, k512x512);
  EXPECT_TRUE(decision.is_im2col_fallback());
}

TEST(SdkMapper, OcLargerThanColumnsMeansNoWindow) {
  // Even γ = 2 needs OC*4 columns; with OC = 2048 > 512 the baseline
  // cannot duplicate at all.
  const ConvShape wide = ConvShape::square(14, 3, 16, 2048);
  EXPECT_EQ(SdkMapper::chosen_gamma(wide, k512x512), 1);
}

TEST(SdkMapper, GammaMonotoneInColumns) {
  // More columns -> γ can only grow (until rows/IFM stop it).
  const ConvShape shape = ConvShape::square(64, 3, 4, 16);
  Dim last = 1;
  for (const Dim cols : {64, 128, 256, 512, 1024, 2048}) {
    const Dim gamma = SdkMapper::chosen_gamma(shape, {512, cols});
    EXPECT_GE(gamma, last);
    last = gamma;
  }
}

TEST(SdkMapper, DecisionMetadata) {
  const SdkMapper mapper;
  EXPECT_EQ(mapper.name(), "sdk");
  const ConvShape conv2 = ConvShape::square(56, 3, 64, 64);
  const MappingDecision decision = mapper.map(conv2, k512x512);
  EXPECT_EQ(decision.algorithm, "sdk");
  EXPECT_EQ(decision.cost.ic_t, 64);  // entire channels
  EXPECT_EQ(decision.cost.oc_t, 64);
}

}  // namespace
}  // namespace vwsdk
