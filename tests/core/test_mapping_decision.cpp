#include "core/mapping_decision.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(MappingDecision, TableEntryForWindowedMapping) {
  MappingDecision decision;
  decision.shape = ConvShape::square(56, 3, 128, 256);
  decision.cost = vw_cost(decision.shape, {512, 512}, {4, 3});
  EXPECT_FALSE(decision.is_im2col_fallback());
  EXPECT_EQ(decision.table_entry(), "4x3x42x256");
}

TEST(MappingDecision, TableEntryForFallbackUsesFullChannels) {
  MappingDecision decision;
  decision.shape = ConvShape::square(7, 3, 512, 512);
  decision.cost = im2col_cost(decision.shape, {512, 512});
  EXPECT_TRUE(decision.is_im2col_fallback());
  EXPECT_EQ(decision.table_entry(), "3x3x512x512");
}

TEST(MappingDecision, ToStringMentionsAlgorithmAndCycles) {
  MappingDecision decision;
  decision.algorithm = "vw-sdk";
  decision.shape = ConvShape::square(56, 3, 128, 256);
  decision.cost = vw_cost(decision.shape, {512, 512}, {4, 3});
  const std::string text = decision.to_string();
  EXPECT_NE(text.find("vw-sdk"), std::string::npos);
  EXPECT_NE(text.find("5832"), std::string::npos);
}

TEST(MakeMapper, ResolvesAllNames) {
  EXPECT_EQ(make_mapper("im2col")->name(), "im2col");
  EXPECT_EQ(make_mapper("smd")->name(), "smd");
  EXPECT_EQ(make_mapper("sdk")->name(), "sdk");
  EXPECT_EQ(make_mapper("vw-sdk")->name(), "vw-sdk");
  EXPECT_EQ(make_mapper("vwsdk")->name(), "vw-sdk");
  EXPECT_EQ(make_mapper("VW-SDK")->name(), "vw-sdk");
  EXPECT_EQ(make_mapper("exhaustive")->name(), "exhaustive");
}

TEST(MakeMapper, UnknownNameThrows) {
  EXPECT_THROW(make_mapper("alexnet"), NotFound);
}

}  // namespace
}  // namespace vwsdk
