/// Parameterized property suite over (layer, geometry) pairs: invariants
/// of the search algorithms that must hold everywhere, not just on the
/// paper's configurations.

#include <gtest/gtest.h>

#include "core/exhaustive_mapper.h"
#include "core/im2col_mapper.h"
#include "core/sdk_mapper.h"
#include "core/smd_mapper.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

struct SearchCase {
  Dim image, kernel, ic, oc, rows, cols;
};

std::ostream& operator<<(std::ostream& os, const SearchCase& c) {
  return os << c.image << "/" << c.kernel << "/" << c.ic << "/" << c.oc
            << " on " << c.rows << "x" << c.cols;
}

class SearchProperties : public ::testing::TestWithParam<SearchCase> {
 protected:
  ConvShape shape() const {
    const SearchCase& c = GetParam();
    return ConvShape::square(c.image, c.kernel, c.ic, c.oc);
  }
  ArrayGeometry geometry() const {
    const SearchCase& c = GetParam();
    return ArrayGeometry{c.rows, c.cols};
  }
};

TEST_P(SearchProperties, VwSdkMatchesExhaustiveOracle) {
  const VwSdkMapper vw;
  const ExhaustiveMapper oracle;
  EXPECT_EQ(vw.map(shape(), geometry()).cost.total,
            oracle.map(shape(), geometry()).cost.total);
}

TEST_P(SearchProperties, VwSdkNeverWorseThanAnyBaseline) {
  const Cycles vw = VwSdkMapper().map(shape(), geometry()).cost.total;
  EXPECT_LE(vw, Im2colMapper().map(shape(), geometry()).cost.total);
  EXPECT_LE(vw, SdkMapper().map(shape(), geometry()).cost.total);
}

TEST_P(SearchProperties, SdkNeverWorseThanIm2col) {
  // The reconstructed SDK constraints guarantee SDK's windows only ever
  // reduce cycles relative to im2col.
  EXPECT_LE(SdkMapper().map(shape(), geometry()).cost.total,
            Im2colMapper().map(shape(), geometry()).cost.total);
}

TEST_P(SearchProperties, ChosenMappingIsFeasible) {
  for (const char* name : {"im2col", "smd", "sdk", "vw-sdk"}) {
    const MappingDecision decision =
        make_mapper(name)->map(shape(), geometry());
    EXPECT_TRUE(decision.cost.feasible) << name;
    EXPECT_GT(decision.cost.total, 0) << name;
    if (decision.cost.split == RowSplit::kChannelGranular) {
      EXPECT_LE(decision.cost.window.area() * decision.cost.ic_t,
                geometry().rows)
          << name;
    }
  }
}

TEST_P(SearchProperties, MoreRowsNeverHurtVwSdk) {
  const VwSdkMapper vw;
  const ArrayGeometry bigger{geometry().rows * 2, geometry().cols};
  EXPECT_LE(vw.map(shape(), bigger).cost.total,
            vw.map(shape(), geometry()).cost.total);
}

TEST_P(SearchProperties, MoreColsNeverHurtVwSdk) {
  const VwSdkMapper vw;
  const ArrayGeometry bigger{geometry().rows, geometry().cols * 2};
  EXPECT_LE(vw.map(shape(), bigger).cost.total,
            vw.map(shape(), geometry()).cost.total);
}

INSTANTIATE_TEST_SUITE_P(
    LayerArraySweep, SearchProperties,
    ::testing::Values(
        // The paper's layers on the paper's arrays.
        SearchCase{224, 3, 3, 64, 512, 512},
        SearchCase{56, 3, 128, 256, 512, 512},
        SearchCase{28, 3, 256, 512, 512, 512},
        SearchCase{7, 3, 512, 512, 512, 512},
        SearchCase{112, 7, 3, 64, 512, 512},
        SearchCase{56, 3, 64, 64, 128, 128},
        SearchCase{14, 3, 256, 256, 128, 256},
        SearchCase{28, 3, 128, 128, 256, 256},
        SearchCase{14, 3, 256, 256, 512, 256},
        // Off-paper shapes: odd kernels, skinny arrays, huge OC, tiny IC.
        SearchCase{13, 5, 12, 24, 128, 256},
        SearchCase{32, 1, 8, 8, 64, 64},
        SearchCase{9, 3, 2, 2048, 512, 512},
        SearchCase{64, 3, 1, 1, 32, 32},
        SearchCase{16, 3, 1024, 16, 256, 128},
        SearchCase{11, 7, 6, 12, 512, 512},
        SearchCase{24, 3, 20, 40, 200, 100}));

// VW-SDK speedup over im2col grows (weakly) with array size on whole
// networks -- the trend of Fig. 8(b), checked per layer here.
TEST(SearchTrend, SpeedupGrowsWithArraySize) {
  const VwSdkMapper vw;
  const Im2colMapper im2col;
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  double last_speedup = 0.0;
  for (const ArrayGeometry& geometry :
       {ArrayGeometry{128, 128}, ArrayGeometry{256, 256},
        ArrayGeometry{512, 512}}) {
    const double speedup =
        static_cast<double>(im2col.map(shape, geometry).cost.total) /
        static_cast<double>(vw.map(shape, geometry).cost.total);
    EXPECT_GE(speedup + 1e-9, last_speedup);
    last_speedup = speedup;
  }
  EXPECT_GT(last_speedup, 1.0);
}

}  // namespace
}  // namespace vwsdk
