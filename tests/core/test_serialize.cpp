#include "core/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

NetworkMappingResult vw_resnet() {
  return optimize_network(*make_mapper("vw-sdk"), resnet18_paper(),
                          k512x512);
}

TEST(Serialize, ResultCsvRoundTripsThroughParser) {
  std::ostringstream os;
  write_result_csv(os, vw_resnet());
  const std::vector<std::string> lines = split(trim(os.str()), '\n');
  ASSERT_EQ(lines.size(), 6u);  // header + 5 layers
  const auto header = csv_parse_line(lines[0]);
  EXPECT_EQ(header.front(), "network");
  EXPECT_EQ(header[15], "cycles");
  EXPECT_EQ(header[16], "objective");
  EXPECT_EQ(header.back(), "score");
  const auto conv4 = csv_parse_line(lines[4]);
  ASSERT_EQ(conv4.size(), header.size());
  EXPECT_EQ(conv4[0], "ResNet-18");
  EXPECT_EQ(conv4[3], "conv4");
  EXPECT_EQ(conv4[8], "1");          // groups
  EXPECT_EQ(conv4[9], "4x3");        // window
  EXPECT_EQ(conv4[10], "42");        // ic_t
  EXPECT_EQ(conv4[15], "504");       // cycles
  EXPECT_EQ(conv4[16], "cycles");    // objective
  EXPECT_EQ(conv4[17], "504.0000");  // score == cycles by default
}

TEST(Serialize, ComparisonCsvHasSpeedups) {
  const NetworkComparison cmp =
      compare_mappers({"im2col", "vw-sdk"}, resnet18_paper(), k512x512);
  std::ostringstream os;
  write_comparison_csv(os, cmp);
  const std::vector<std::string> lines = split(trim(os.str()), '\n');
  ASSERT_EQ(lines.size(), 1u + 2 * 5);
  // im2col rows have speedup 1.0000.
  const auto first = csv_parse_line(lines[1]);
  EXPECT_EQ(first.back(), "1.0000");
  // The VW conv3 row: 2028/676 = 3.0000.
  const auto vw_conv3 = csv_parse_line(lines[8]);
  EXPECT_EQ(vw_conv3[3], "conv3");
  EXPECT_EQ(vw_conv3.back(), "3.0000");
}

TEST(Serialize, DecisionJsonContainsAllFields) {
  const MappingDecision decision = make_mapper("vw-sdk")->map(
      ConvShape::square(56, 3, 128, 256), k512x512);
  const std::string json = to_json(decision);
  EXPECT_NE(json.find("\"algorithm\":\"vw-sdk\""), std::string::npos);
  EXPECT_NE(json.find("\"window\":\"4x3\""), std::string::npos);
  EXPECT_NE(json.find("\"ic_t\":42"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":5832"), std::string::npos);
  EXPECT_NE(json.find("\"objective\":\"cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":5832.0000"), std::string::npos);
  EXPECT_NE(json.find("\"im2col_fallback\":false"), std::string::npos);
}

TEST(Serialize, EnergyObjectiveFlowsIntoCsvAndJson) {
  OptimizerOptions options;
  options.objective = &energy_objective();
  const NetworkMappingResult result = optimize_network(
      *make_mapper("vw-sdk"), resnet18_paper(), k512x512, options);

  std::ostringstream os;
  write_result_csv(os, result);
  const std::vector<std::string> lines = split(trim(os.str()), '\n');
  const auto row = csv_parse_line(lines[1]);
  EXPECT_EQ(row[16], "energy");

  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"objective\":\"energy\""), std::string::npos);
  EXPECT_NE(json.find("\"total_score\":"), std::string::npos);
}

TEST(Serialize, NetworkJsonHasLayersAndTotal) {
  const std::string json = to_json(vw_resnet());
  EXPECT_NE(json.find("\"network\":\"ResNet-18\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"conv1\""), std::string::npos);
  EXPECT_NE(json.find("\"total_cycles\":4294"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Serialize, JsonEscapesSpecialCharacters) {
  MappingDecision decision = make_mapper("im2col")->map(
      ConvShape::square(8, 3, 2, 2), {64, 32});
  decision.algorithm = "weird\"name\\with\nstuff";
  const std::string json = to_json(decision);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);

  decision.algorithm = "tab\tand\rctrl\x01";
  EXPECT_NE(to_json(decision).find("tab\\tand\\rctrl\\u0001"),
            std::string::npos);
}

}  // namespace
}  // namespace vwsdk
