/// Smoke test for the documented VGG-13 conv5 tie-break (vwsdk_mapper.h):
/// on a 512x512 array, the 4x4 window ties the 4x3 window at 5832 cycles,
/// and Algorithm 1's first-strict-minimum scan must report 4x3 because it
/// is visited first.  Goes through the model zoo so the layer is exactly
/// the one Table I prints.

#include <gtest/gtest.h>

#include "core/vwsdk_mapper.h"
#include "mapping/cost_model.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

ConvShape vgg13_conv5() {
  return ConvShape::from_layer(vgg13_paper().layer_by_name("conv5"));
}

TEST(VwSdkSmoke, Vgg13Conv5WindowsTieAt5832) {
  const ConvShape conv5 = vgg13_conv5();
  const CycleCost c43 = vw_cost(conv5, k512x512, {4, 3});
  const CycleCost c44 = vw_cost(conv5, k512x512, {4, 4});
  ASSERT_TRUE(c43.feasible);
  ASSERT_TRUE(c44.feasible);
  EXPECT_EQ(c43.total, 5832);
  EXPECT_EQ(c44.total, 5832);
}

TEST(VwSdkSmoke, Vgg13Conv5FirstMinimumPicks4x3) {
  const VwSdkMapper mapper;
  const MappingDecision decision = mapper.map(vgg13_conv5(), k512x512);
  EXPECT_EQ(decision.cost.window, (ParallelWindow{4, 3}));
  EXPECT_EQ(decision.cost.total, 5832);
  EXPECT_FALSE(decision.is_im2col_fallback());
}

TEST(VwSdkSmoke, Vgg13Conv5ScanVisits4x3Before4x4) {
  const VwSdkMapper mapper;
  SearchTrace trace;
  mapper.map_traced(vgg13_conv5(), k512x512, &trace);
  std::ptrdiff_t seen_4x3 = -1;
  std::ptrdiff_t seen_4x4 = -1;
  const auto& steps = trace.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].window == (ParallelWindow{4, 3}) && seen_4x3 < 0) {
      seen_4x3 = static_cast<std::ptrdiff_t>(i);
    }
    if (steps[i].window == (ParallelWindow{4, 4}) && seen_4x4 < 0) {
      seen_4x4 = static_cast<std::ptrdiff_t>(i);
    }
  }
  ASSERT_GE(seen_4x3, 0);
  ASSERT_GE(seen_4x4, 0);
  EXPECT_LT(seen_4x3, seen_4x4);
}

}  // namespace
}  // namespace vwsdk
