#include "core/im2col_mapper.h"

#include <gtest/gtest.h>

namespace vwsdk {
namespace {

TEST(Im2colMapper, AlwaysKernelWindow) {
  const Im2colMapper mapper;
  EXPECT_EQ(mapper.name(), "im2col");
  const ConvShape shape = ConvShape::square(28, 3, 256, 512);
  const MappingDecision decision = mapper.map(shape, {512, 512});
  EXPECT_TRUE(decision.is_im2col_fallback());
  EXPECT_EQ(decision.cost.window, (ParallelWindow{3, 3}));
  EXPECT_EQ(decision.cost.total, 676 * 5);
}

TEST(Im2colMapper, SmallArrayNeedsManyCycles) {
  const Im2colMapper mapper;
  const ConvShape shape = ConvShape::square(14, 3, 512, 512);
  // 128x128 array: AR = ceil(4608/128) = 36, AC = ceil(512/128) = 4.
  const MappingDecision decision = mapper.map(shape, {128, 128});
  EXPECT_EQ(decision.cost.ar_cycles, 36);
  EXPECT_EQ(decision.cost.ac_cycles, 4);
  EXPECT_EQ(decision.cost.total, 144LL * 36 * 4);
}

TEST(Im2colMapper, TableEntryUsesFullChannels) {
  const Im2colMapper mapper;
  const ConvShape shape = ConvShape::square(7, 3, 512, 512);
  EXPECT_EQ(mapper.map(shape, {512, 512}).table_entry(), "3x3x512x512");
}

}  // namespace
}  // namespace vwsdk
