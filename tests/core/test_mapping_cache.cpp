#include "core/mapping_cache.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(MappingCache, HitReturnsIdenticalDecision) {
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape shape = ConvShape::square(14, 3, 256, 256);
  const MappingDecision first = cache.map(mapper, shape, k512x512);
  const MappingDecision second = cache.map(mapper, shape, k512x512);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, mapper.map(shape, k512x512));
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(MappingCache, DistinguishesMapperShapeAndGeometry) {
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape a = ConvShape::square(14, 3, 256, 256);
  const ConvShape b = ConvShape::square(28, 3, 256, 256);
  (void)cache.map(mapper, a, k512x512);
  (void)cache.map(mapper, b, k512x512);             // new shape
  (void)cache.map(mapper, a, {256, 256});           // new geometry
  (void)cache.get_or_compute(                       // new mapper id
      MappingCacheKey{"other", a, k512x512},
      [&]() { return mapper.map(a, k512x512); });
  EXPECT_EQ(cache.stats().misses, 4);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 4);
}

TEST(MappingCache, SingleFlightUnderConcurrency) {
  // 32 concurrent requests for the same key must compute exactly once:
  // hit/miss counters stay deterministic no matter how the tasks race.
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  std::atomic<int> computes{0};
  ThreadPool pool(8);
  std::vector<std::future<MappingDecision>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&]() {
      return cache.get_or_compute(
          MappingCacheKey{mapper.name(), shape, k512x512}, [&]() {
            ++computes;
            return mapper.map(shape, k512x512);
          });
    }));
  }
  const MappingDecision expected = mapper.map(shape, k512x512);
  for (auto& future : futures) {
    EXPECT_EQ(future.get(), expected);
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 31);
}

TEST(MappingCache, ComputeFailureIsEvictedAndRetried) {
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape shape = ConvShape::square(14, 3, 16, 16);
  const MappingCacheKey key{mapper.name(), shape, k512x512};
  EXPECT_THROW(cache.get_or_compute(
                   key,
                   []() -> MappingDecision {
                     throw std::runtime_error("search exploded");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0);  // evicted, not poisoned
  const MappingDecision retried = cache.get_or_compute(
      key, [&]() { return mapper.map(shape, k512x512); });
  EXPECT_EQ(retried, mapper.map(shape, k512x512));
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(MappingCache, ClearDropsEntriesKeepsStats) {
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape shape = ConvShape::square(14, 3, 16, 16);
  (void)cache.map(mapper, shape, k512x512);
  cache.clear();
  EXPECT_EQ(cache.size(), 0);
  (void)cache.map(mapper, shape, k512x512);  // recomputes after clear
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
}

// Pinning test for the one-lock stats snapshot: `entries` is part of
// MappingCacheStats precisely so hits/misses/entries come from a single
// lock acquisition.  Reading size() separately (the old shape) could
// interleave a concurrent insert and report entries > misses, which is
// impossible in a consistent snapshot (every entry was created by a
// miss).
TEST(MappingCache, StatsSnapshotStaysInternallyConsistent) {
  const VwSdkMapper mapper;
  MappingCache cache;
  std::atomic<bool> done{false};
  std::thread inserter([&] {
    for (int i = 0; i < 24; ++i) {
      const ConvShape shape = ConvShape::square(8 + i, 3, 8, 8);
      (void)cache.map(mapper, shape, k512x512);
    }
    done.store(true);
  });
  while (!done.load()) {
    const MappingCacheStats snapshot = cache.stats();
    ASSERT_LE(snapshot.entries, snapshot.misses)
        << "torn snapshot: an entry exists that no recorded miss created";
  }
  inserter.join();
  const MappingCacheStats final_stats = cache.stats();
  EXPECT_EQ(final_stats.entries, 24);
  EXPECT_EQ(final_stats.misses, 24);
  EXPECT_EQ(final_stats.entries, cache.size());
}

/// Many threads racing many keys (ctest label `stress`): single-flight
/// must hold per key, with the counters landing exactly on
/// (distinct keys) misses no matter how the requests interleave.
TEST(MappingCacheStress, ManyKeysManyThreadsComputeOncePerKey) {
  constexpr int kKeys = 12;
  constexpr int kThreads = 8;
  const VwSdkMapper mapper;
  MappingCache cache;
  std::vector<ConvShape> shapes;
  shapes.reserve(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    shapes.push_back(ConvShape::square(6 + k, 3, 8, 8));
  }
  std::vector<std::atomic<int>> computes(kKeys);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shapes, &cache, &mapper, &computes] {
      for (int k = 0; k < kKeys; ++k) {
        // Each thread walks the keys from a different start so every
        // key sees first-requester races from several threads.
        const int key = (k + t) % kKeys;
        const ConvShape& shape = shapes[static_cast<std::size_t>(key)];
        const MappingDecision decision = cache.get_or_compute(
            MappingCacheKey{mapper.name(), shape, k512x512}, [&] {
              ++computes[static_cast<std::size_t>(key)];
              return mapper.map(shape, k512x512);
            });
        EXPECT_EQ(decision, mapper.map(shape, k512x512));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(computes[static_cast<std::size_t>(k)].load(), 1)
        << "key " << k << " computed more than once";
  }
  const MappingCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, kKeys);
  EXPECT_EQ(stats.hits, kKeys * kThreads - kKeys);
  EXPECT_EQ(stats.entries, kKeys);
}

}  // namespace
}  // namespace vwsdk
