#include "core/vwsdk_mapper.h"

#include <gtest/gtest.h>

#include "core/im2col_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};
const ArrayGeometry k512x256{512, 256};

TEST(VwSdkMapper, FirstMinimumTieBreakPicks4x3OverTied4x4) {
  // VGG-13 conv5: 4x3 and 4x4 both cost 5832; Algorithm 1 scans h = 3
  // before h = 4, so 4x3 must win -- as the paper's Table I reports.
  const VwSdkMapper mapper;
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const MappingDecision decision = mapper.map(conv5, k512x512);
  EXPECT_EQ(decision.cost.window, (ParallelWindow{4, 3}));
  EXPECT_EQ(decision.cost.total, 5832);
}

TEST(VwSdkMapper, FallsBackToIm2colWhenNoWindowHelps) {
  const VwSdkMapper mapper;
  const ConvShape conv5 = ConvShape::square(7, 3, 512, 512);
  const MappingDecision decision = mapper.map(conv5, k512x512);
  EXPECT_TRUE(decision.is_im2col_fallback());
  EXPECT_EQ(decision.cost.split, RowSplit::kElementGranular);
  EXPECT_EQ(decision.cost.total, 225);
}

TEST(VwSdkMapper, NeverWorseThanIm2col) {
  const VwSdkMapper vw;
  const Im2colMapper im2col;
  for (const ConvShape& shape :
       {ConvShape::square(28, 3, 256, 512), ConvShape::square(56, 3, 64, 64),
        ConvShape::square(112, 7, 3, 64), ConvShape::square(13, 5, 12, 24)}) {
    for (const ArrayGeometry& geometry :
         {ArrayGeometry{128, 128}, ArrayGeometry{256, 256},
          ArrayGeometry{512, 256}}) {
      EXPECT_LE(vw.map(shape, geometry).cost.total,
                im2col.map(shape, geometry).cost.total)
          << shape.to_string() << " on " << geometry.to_string();
    }
  }
}

TEST(VwSdkMapper, TraceRecordsFullScan) {
  const VwSdkMapper mapper;
  const ConvShape small = ConvShape::square(8, 3, 4, 6);
  SearchTrace trace;
  const MappingDecision decision =
      mapper.map_traced(small, {64, 32}, &trace);
  // Scan is (8-3+1)^2 - 1 = 35 candidates for an 8x8 IFM with 3x3 kernel.
  EXPECT_EQ(trace.candidates_visited(), 35);
  EXPECT_GT(trace.feasible_count(), 0);
  EXPECT_GE(trace.improvement_count(), 1);
  // The last improvement must be the returned window.
  const auto improvements = trace.improvements();
  ASSERT_FALSE(improvements.empty());
  EXPECT_EQ(improvements.back().window, decision.cost.window);
  EXPECT_EQ(improvements.back().cycles, decision.cost.total);
}

TEST(VwSdkMapper, TraceScanOrderIsWidthInnerHeightOuter) {
  const VwSdkMapper mapper;
  const ConvShape small = ConvShape::square(5, 3, 1, 1);
  SearchTrace trace;
  mapper.map_traced(small, {64, 32}, &trace);
  // Candidates for a 5x5 IFM: (w,h) in {3,4,5}^2 minus (3,3):
  // order: (4,3), (5,3), (3,4), (4,4), (5,4), (3,5), (4,5), (5,5).
  ASSERT_EQ(trace.candidates_visited(), 8);
  EXPECT_EQ(trace.steps()[0].window, (ParallelWindow{4, 3}));
  EXPECT_EQ(trace.steps()[1].window, (ParallelWindow{5, 3}));
  EXPECT_EQ(trace.steps()[2].window, (ParallelWindow{3, 4}));
  EXPECT_EQ(trace.steps()[7].window, (ParallelWindow{5, 5}));
}

TEST(VwSdkMapper, RectangularBeatsSquareOnPaperExample) {
  // Fig. 5(b)'s headline: on 512x256 with K=3, IC=42, OC=96 the 4x3
  // window wins and the optimizer must find it.
  const VwSdkMapper mapper;
  const ConvShape shape = ConvShape::square(56, 3, 42, 96);
  const MappingDecision decision = mapper.map(shape, k512x256);
  EXPECT_EQ(decision.cost.window, (ParallelWindow{4, 3}));
}

TEST(VwSdkMapper, WindowNeverExceedsIfm) {
  const VwSdkMapper mapper;
  const ConvShape tiny = ConvShape::square(4, 3, 2, 2);
  const MappingDecision decision = mapper.map(tiny, k512x512);
  EXPECT_LE(decision.cost.window.w, 4);
  EXPECT_LE(decision.cost.window.h, 4);
  // 4x4 whole-IFM window: 1 PW, IC_t = 2, OC_t = 2 -> 1 cycle.
  EXPECT_EQ(decision.cost.total, 1);
}

TEST(VwSdkMapper, StrideExtensionScansOnlyAdmissibleWindows) {
  ConvShape strided = ConvShape::square(9, 3, 2, 3);
  strided.stride_w = 2;
  strided.stride_h = 2;
  SearchTrace trace;
  const VwSdkMapper mapper;
  const MappingDecision decision =
      mapper.map_traced(strided, {64, 32}, &trace);
  for (const SearchStep& step : trace.steps()) {
    EXPECT_EQ((step.window.w - 3) % 2, 0);
    EXPECT_EQ((step.window.h - 3) % 2, 0);
  }
  EXPECT_GE(decision.cost.n_parallel_windows, 1);
}

TEST(VwSdkMapper, NameAndDecisionMetadata) {
  const VwSdkMapper mapper;
  EXPECT_EQ(mapper.name(), "vw-sdk");
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingDecision decision = mapper.map(shape, {64, 32});
  EXPECT_EQ(decision.algorithm, "vw-sdk");
  EXPECT_EQ(decision.shape, shape);
  EXPECT_EQ(decision.geometry, (ArrayGeometry{64, 32}));
}

}  // namespace
}  // namespace vwsdk
