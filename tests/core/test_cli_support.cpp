#include "core/cli_support.h"

#include <limits>
#include <new>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {
namespace {

/// A parser with the shared option bundles applied to `argv`.
ArgParser parsed(const std::vector<const char*>& extra) {
  ArgParser args("test", "cli_support test harness");
  add_shape_options(args, 28, 3, 64, 128);
  add_array_option(args, "512x256");
  add_mappers_option(args);
  add_objective_option(args);
  std::vector<const char*> argv{"test"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  EXPECT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data()));
  return args;
}

TEST(CliSupport, ShapeOptionsDefaultAndParse) {
  const ConvShape defaults = shape_from_args(parsed({}));
  EXPECT_EQ(defaults, ConvShape::square(28, 3, 64, 128));

  const ConvShape custom = shape_from_args(
      parsed({"--image", "10", "--kernel", "5", "--ic", "2", "--oc", "7"}));
  EXPECT_EQ(custom, ConvShape::square(10, 5, 2, 7));
}

TEST(CliSupport, ShapeOptionsRejectDimOverflowInsteadOfWrapping) {
  // Regression: 4294967297 = 2^32 + 1 wraps to 1 under a bare
  // static_cast<Dim>, silently mapping a "1x1 image" the user never
  // asked for.  dim_in_range makes it a usage error naming the flag.
  try {
    (void)shape_from_args(parsed({"--image", "4294967297"}));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--image"), std::string::npos) << what;
    EXPECT_NE(what.find("4294967297"), std::string::npos) << what;
  }
  EXPECT_THROW((void)shape_from_args(parsed({"--oc", "2147483648"})),
               InvalidArgument);  // INT32_MAX + 1
  EXPECT_THROW((void)shape_from_args(parsed({"--kernel", "0"})),
               InvalidArgument);
  EXPECT_THROW((void)shape_from_args(parsed({"--ic", "-5"})),
               InvalidArgument);
  // The full 31-bit range itself stays accepted (ConvShape may still
  // reject geometric nonsense downstream, but no wrap happens here).
  EXPECT_EQ(dim_in_range(parsed({"--image", "2147483647"}), "image", 1),
            std::numeric_limits<Dim>::max());
}

TEST(CliSupport, IntInRangeEnforcesBothBounds) {
  EXPECT_EQ(int_in_range(parsed({"--image", "17"}), "image", 1), 17);
  EXPECT_THROW((void)int_in_range(parsed({"--image", "17"}), "image", 18),
               InvalidArgument);
  EXPECT_THROW((void)int_in_range(parsed({"--image", "17"}), "image", 1, 16),
               InvalidArgument);
}

TEST(CliSupport, ArrayOptionParsesGeometry) {
  EXPECT_EQ(array_from_args(parsed({})), (ArrayGeometry{512, 256}));
  EXPECT_EQ(array_from_args(parsed({"--array", "64x32"})),
            (ArrayGeometry{64, 32}));
  EXPECT_THROW(array_from_args(parsed({"--array", "garbage"})),
               InvalidArgument);
}

TEST(CliSupport, MappersOptionValidatesNames) {
  EXPECT_EQ(mappers_from_args(parsed({})),
            (std::vector<std::string>{"im2col", "smd", "sdk", "vw-sdk"}));
  // Whitespace and empty entries are tolerated.
  EXPECT_EQ(mappers_from_args(parsed({"--mappers", " vw-sdk ,,sdk"})),
            (std::vector<std::string>{"vw-sdk", "sdk"}));
  // Aliases resolve to the canonical registry name.
  EXPECT_EQ(mappers_from_args(parsed({"--mappers", "vwsdk,pruned"})),
            (std::vector<std::string>{"vw-sdk", "vw-sdk-pruned"}));
  // Unknown names fail with NotFound, duplicates with InvalidArgument --
  // including a duplicate smuggled in through an alias.
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", "vw-sdk,frob"})),
               NotFound);
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", "sdk,sdk"})),
               InvalidArgument);
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", "vw-sdk,vwsdk"})),
               InvalidArgument);
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", " , "})),
               InvalidArgument);
}

TEST(CliSupport, MappersErrorNamesTheRegistryList) {
  // The "known: ..." list is registry-derived, not hand-maintained.
  try {
    (void)mappers_from_args(parsed({"--mappers", "vw-sdk,frob"}));
    FAIL() << "expected NotFound";
  } catch (const NotFound& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("known:"), std::string::npos) << message;
    EXPECT_NE(message.find("im2col"), std::string::npos) << message;
    EXPECT_NE(message.find("vw-sdk-bitsliced"), std::string::npos)
        << message;
  }
}

TEST(CliSupport, ObjectiveOptionResolvesTheSingletons) {
  EXPECT_EQ(&objective_from_args(parsed({})), &cycles_objective());
  EXPECT_EQ(&objective_from_args(parsed({"--objective", "energy"})),
            &energy_objective());
  EXPECT_EQ(&objective_from_args(parsed({"--objective", " EDP "})),
            &edp_objective());
  EXPECT_THROW(objective_from_args(parsed({"--objective", "joules"})),
               NotFound);
}

TEST(CliSupport, RunCliMainMapsExceptionsToExitCodes) {
  EXPECT_EQ(run_cli_main([] { return kExitOk; }), 0);
  EXPECT_EQ(run_cli_main([]() -> int { return 7; }), 7);
  EXPECT_EQ(run_cli_main([]() -> int {
              throw InvalidArgument("bad flag");
            }),
            kExitUsageError);
  EXPECT_EQ(run_cli_main([]() -> int { throw NotFound("no such model"); }),
            kExitUsageError);
  EXPECT_EQ(run_cli_main([]() -> int { throw Error("runtime failure"); }),
            kExitError);
}

TEST(CliSupport, RunCliMainCatchesForeignExceptions) {
  // A non-vwsdk exception must report and exit 1, never terminate().
  EXPECT_EQ(run_cli_main([]() -> int {
              throw std::runtime_error("filesystem exploded");
            }),
            kExitError);
  EXPECT_EQ(run_cli_main([]() -> int { throw std::bad_alloc(); }),
            kExitError);
  EXPECT_EQ(run_cli_main([]() -> int { throw 42; }), kExitError);
}

TEST(CliSupport, ExitCodeForFollowsTheUsageSplit) {
  EXPECT_EQ(exit_code_for(ErrorCode::kInvalidArgument), kExitUsageError);
  EXPECT_EQ(exit_code_for(ErrorCode::kNotFound), kExitUsageError);
  EXPECT_EQ(exit_code_for(ErrorCode::kBadRequest), kExitUsageError);
  EXPECT_EQ(exit_code_for(ErrorCode::kOverflow), kExitUsageError);
  EXPECT_EQ(exit_code_for(ErrorCode::kRuntime), kExitError);
  EXPECT_EQ(exit_code_for(ErrorCode::kInternal), kExitError);
  EXPECT_EQ(exit_code_for(ErrorCode::kOverloaded), kExitError);
}

/// A SubcommandSet with `names` registered, each recording its calls.
SubcommandSet command_set(const std::vector<std::string>& names,
                          std::vector<std::string>* calls) {
  SubcommandSet commands;
  for (const std::string& name : names) {
    commands.add({name, cat("summary of ", name),
                  [name, calls](int argc, const char* const* argv) {
                    calls->push_back(
                        cat(name, "/", argc, "/", argv[0]));
                    return 5;
                  }});
  }
  return commands;
}

TEST(CliSupport, SubcommandSetRegistersAndFinds) {
  std::vector<std::string> calls;
  const SubcommandSet commands = command_set({"map", "serve"}, &calls);
  EXPECT_EQ(commands.commands().size(), 2u);
  ASSERT_NE(commands.find("serve"), nullptr);
  EXPECT_EQ(commands.find("serve")->summary, "summary of serve");
  EXPECT_EQ(commands.find("frob"), nullptr);
}

TEST(CliSupport, SubcommandSetRejectsBadRegistrations) {
  std::vector<std::string> calls;
  SubcommandSet commands = command_set({"map"}, &calls);
  EXPECT_THROW(commands.add({"", "x", [](int, const char* const*) {
                               return 0;
                             }}),
               InvalidArgument);
  EXPECT_THROW(commands.add({"map", "again", [](int, const char* const*) {
                               return 0;
                             }}),
               InvalidArgument);
  EXPECT_THROW(commands.add({"new", "no handler", nullptr}),
               InvalidArgument);
}

TEST(CliSupport, SubcommandSetCommandListAligns) {
  std::vector<std::string> calls;
  const SubcommandSet commands = command_set({"map", "compare"}, &calls);
  EXPECT_EQ(commands.command_list(),
            "  map      summary of map\n"
            "  compare  summary of compare\n");
}

TEST(CliSupport, SubcommandSetDispatchRebasesArgv) {
  std::vector<std::string> calls;
  const SubcommandSet commands = command_set({"map"}, &calls);
  const char* argv[] = {"vwsdk", "map", "--net", "lenet5"};
  EXPECT_EQ(commands.dispatch(4, argv, [] { return "help\n"; }, "v"), 5);
  // The handler sees argv rebased so argv[0] is the subcommand itself.
  EXPECT_EQ(calls, (std::vector<std::string>{"map/3/map"}));
}

TEST(CliSupport, SubcommandSetDispatchRejectsUnknownCommands) {
  std::vector<std::string> calls;
  const SubcommandSet commands = command_set({"map", "serve"}, &calls);
  const char* argv[] = {"vwsdk", "frob"};
  try {
    commands.dispatch(2, argv, [] { return "help\n"; }, "v");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    // The error names the known commands (the cli smoke test greps for
    // this shape too).
    EXPECT_NE(what.find("unknown command \"frob\""), std::string::npos);
    EXPECT_NE(what.find("known: map, serve"), std::string::npos);
  }
  EXPECT_TRUE(calls.empty());
}

}  // namespace
}  // namespace vwsdk
