#include "core/cli_support.h"

#include <new>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

/// A parser with the shared option bundles applied to `argv`.
ArgParser parsed(const std::vector<const char*>& extra) {
  ArgParser args("test", "cli_support test harness");
  add_shape_options(args, 28, 3, 64, 128);
  add_array_option(args, "512x256");
  add_mappers_option(args);
  add_objective_option(args);
  std::vector<const char*> argv{"test"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  EXPECT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data()));
  return args;
}

TEST(CliSupport, ShapeOptionsDefaultAndParse) {
  const ConvShape defaults = shape_from_args(parsed({}));
  EXPECT_EQ(defaults, ConvShape::square(28, 3, 64, 128));

  const ConvShape custom = shape_from_args(
      parsed({"--image", "10", "--kernel", "5", "--ic", "2", "--oc", "7"}));
  EXPECT_EQ(custom, ConvShape::square(10, 5, 2, 7));
}

TEST(CliSupport, ArrayOptionParsesGeometry) {
  EXPECT_EQ(array_from_args(parsed({})), (ArrayGeometry{512, 256}));
  EXPECT_EQ(array_from_args(parsed({"--array", "64x32"})),
            (ArrayGeometry{64, 32}));
  EXPECT_THROW(array_from_args(parsed({"--array", "garbage"})),
               InvalidArgument);
}

TEST(CliSupport, MappersOptionValidatesNames) {
  EXPECT_EQ(mappers_from_args(parsed({})),
            (std::vector<std::string>{"im2col", "smd", "sdk", "vw-sdk"}));
  // Whitespace and empty entries are tolerated.
  EXPECT_EQ(mappers_from_args(parsed({"--mappers", " vw-sdk ,,sdk"})),
            (std::vector<std::string>{"vw-sdk", "sdk"}));
  // Aliases resolve to the canonical registry name.
  EXPECT_EQ(mappers_from_args(parsed({"--mappers", "vwsdk,pruned"})),
            (std::vector<std::string>{"vw-sdk", "vw-sdk-pruned"}));
  // Unknown names fail with NotFound, duplicates with InvalidArgument --
  // including a duplicate smuggled in through an alias.
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", "vw-sdk,frob"})),
               NotFound);
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", "sdk,sdk"})),
               InvalidArgument);
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", "vw-sdk,vwsdk"})),
               InvalidArgument);
  EXPECT_THROW(mappers_from_args(parsed({"--mappers", " , "})),
               InvalidArgument);
}

TEST(CliSupport, MappersErrorNamesTheRegistryList) {
  // The "known: ..." list is registry-derived, not hand-maintained.
  try {
    (void)mappers_from_args(parsed({"--mappers", "vw-sdk,frob"}));
    FAIL() << "expected NotFound";
  } catch (const NotFound& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("known:"), std::string::npos) << message;
    EXPECT_NE(message.find("im2col"), std::string::npos) << message;
    EXPECT_NE(message.find("vw-sdk-bitsliced"), std::string::npos)
        << message;
  }
}

TEST(CliSupport, ObjectiveOptionResolvesTheSingletons) {
  EXPECT_EQ(&objective_from_args(parsed({})), &cycles_objective());
  EXPECT_EQ(&objective_from_args(parsed({"--objective", "energy"})),
            &energy_objective());
  EXPECT_EQ(&objective_from_args(parsed({"--objective", " EDP "})),
            &edp_objective());
  EXPECT_THROW(objective_from_args(parsed({"--objective", "joules"})),
               NotFound);
}

TEST(CliSupport, RunCliMainMapsExceptionsToExitCodes) {
  EXPECT_EQ(run_cli_main([] { return kExitOk; }), 0);
  EXPECT_EQ(run_cli_main([]() -> int { return 7; }), 7);
  EXPECT_EQ(run_cli_main([]() -> int {
              throw InvalidArgument("bad flag");
            }),
            kExitUsageError);
  EXPECT_EQ(run_cli_main([]() -> int { throw NotFound("no such model"); }),
            kExitUsageError);
  EXPECT_EQ(run_cli_main([]() -> int { throw Error("runtime failure"); }),
            kExitError);
}

TEST(CliSupport, RunCliMainCatchesForeignExceptions) {
  // A non-vwsdk exception must report and exit 1, never terminate().
  EXPECT_EQ(run_cli_main([]() -> int {
              throw std::runtime_error("filesystem exploded");
            }),
            kExitError);
  EXPECT_EQ(run_cli_main([]() -> int { throw std::bad_alloc(); }),
            kExitError);
  EXPECT_EQ(run_cli_main([]() -> int { throw 42; }), kExitError);
}

}  // namespace
}  // namespace vwsdk
