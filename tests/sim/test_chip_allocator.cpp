#include "sim/chip_allocator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

NetworkMappingResult vw_resnet() {
  return optimize_network(*make_mapper("vw-sdk"), resnet18_paper(),
                          k512x512);
}

TEST(ChipAllocator, ResidentDemandIsSumOfTiles) {
  // VW-SDK ResNet-18 tiles: conv1 1, conv2 2, conv3 4, conv4 7, conv5 9.
  EXPECT_EQ(resident_array_demand(vw_resnet()), 1 + 2 + 4 + 7 + 9);
}

TEST(ChipAllocator, InfeasibleWhenWeightsCannotStayResident) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 16);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_EQ(allocation.bottleneck(), 0);
  EXPECT_NE(allocation.to_string().find("INFEASIBLE"), std::string::npos);
}

TEST(ChipAllocator, MinimalChipMatchesTileDemand) {
  const NetworkMappingResult result = vw_resnet();
  const ChipAllocation allocation = allocate_chip(result, 23);
  ASSERT_TRUE(allocation.feasible);
  EXPECT_EQ(allocation.arrays_used(), 23);
  // With exactly the mandatory tiles, each stage's makespan is its
  // parallel-window count (tiles run concurrently).
  for (std::size_t i = 0; i < allocation.layers.size(); ++i) {
    EXPECT_EQ(allocation.layers[i].makespan,
              result.layers[i].decision.cost.n_parallel_windows)
        << allocation.layers[i].layer_name;
  }
  // Bottleneck = conv2's 729 parallel windows x 2 tiles... no: per-stage
  // makespan at tile count = N_PW; the max N_PW across layers is conv1's
  // 1431.
  EXPECT_EQ(allocation.bottleneck(), 1431);
}

TEST(ChipAllocator, SpareArraysShrinkTheBottleneck) {
  const NetworkMappingResult result = vw_resnet();
  Cycles last = std::numeric_limits<Cycles>::max();
  for (const Dim arrays : {23, 32, 64, 128, 256}) {
    const ChipAllocation allocation = allocate_chip(result, arrays);
    ASSERT_TRUE(allocation.feasible) << arrays;
    EXPECT_LE(allocation.bottleneck(), last) << arrays;
    last = allocation.bottleneck();
  }
  EXPECT_LT(last, 1431 / 8);  // 256 arrays: bottleneck well below minimal
}

TEST(ChipAllocator, NeverExceedsTheChip) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 100);
  ASSERT_TRUE(allocation.feasible);
  EXPECT_LE(allocation.arrays_used(), 100);
  for (const LayerAllocation& layer : allocation.layers) {
    EXPECT_GE(layer.arrays, layer.tiles);
  }
}

TEST(ChipAllocator, FillLatencyIsSumOfStages) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 64);
  Cycles sum = 0;
  for (const LayerAllocation& layer : allocation.layers) {
    sum += layer.makespan;
  }
  EXPECT_EQ(allocation.fill_latency(), sum);
}

TEST(ChipAllocator, VwSdkNeedsFewerCyclesPerChipThanIm2col) {
  // Same chip, both algorithms feasible: VW-SDK's pipeline interval must
  // not exceed im2col's (it never maps a layer worse).
  const NetworkMappingResult vw = vw_resnet();
  const NetworkMappingResult base = optimize_network(
      *make_mapper("im2col"), resnet18_paper(), k512x512);
  for (const Dim arrays : {64, 128, 512}) {
    const ChipAllocation vw_chip = allocate_chip(vw, arrays);
    const ChipAllocation base_chip = allocate_chip(base, arrays);
    ASSERT_TRUE(vw_chip.feasible && base_chip.feasible) << arrays;
    EXPECT_LE(vw_chip.bottleneck(), base_chip.bottleneck()) << arrays;
  }
}

TEST(ChipAllocator, Validation) {
  EXPECT_THROW(allocate_chip(vw_resnet(), 0), InvalidArgument);
  NetworkMappingResult empty;
  EXPECT_THROW(allocate_chip(empty, 64), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
