#include "sim/chip_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/math_util.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

NetworkMappingResult vw_resnet() {
  return optimize_network(*make_mapper("vw-sdk"), resnet18_paper(),
                          k512x512);
}

TEST(ChipAllocator, ResidentDemandIsSumOfTiles) {
  // VW-SDK ResNet-18 tiles: conv1 1, conv2 2, conv3 4, conv4 7, conv5 9.
  EXPECT_EQ(resident_array_demand(vw_resnet()), 1 + 2 + 4 + 7 + 9);
}

TEST(ChipAllocator, InfeasibleWhenWeightsCannotStayResident) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 16);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_EQ(allocation.bottleneck(), 0);
  EXPECT_NE(allocation.to_string().find("INFEASIBLE"), std::string::npos);
}

TEST(ChipAllocator, MinimalChipMatchesTileDemand) {
  const NetworkMappingResult result = vw_resnet();
  const ChipAllocation allocation = allocate_chip(result, 23);
  ASSERT_TRUE(allocation.feasible);
  EXPECT_EQ(allocation.arrays_used(), 23);
  // With exactly the mandatory tiles, each stage's makespan is its
  // parallel-window count (tiles run concurrently).
  for (std::size_t i = 0; i < allocation.layers.size(); ++i) {
    EXPECT_EQ(allocation.layers[i].makespan,
              result.layers[i].decision.cost.n_parallel_windows)
        << allocation.layers[i].layer_name;
  }
  // Bottleneck = conv2's 729 parallel windows x 2 tiles... no: per-stage
  // makespan at tile count = N_PW; the max N_PW across layers is conv1's
  // 1431.
  EXPECT_EQ(allocation.bottleneck(), 1431);
}

TEST(ChipAllocator, SpareArraysShrinkTheBottleneck) {
  const NetworkMappingResult result = vw_resnet();
  Cycles last = std::numeric_limits<Cycles>::max();
  for (const Dim arrays : {23, 32, 64, 128, 256}) {
    const ChipAllocation allocation = allocate_chip(result, arrays);
    ASSERT_TRUE(allocation.feasible) << arrays;
    EXPECT_LE(allocation.bottleneck(), last) << arrays;
    last = allocation.bottleneck();
  }
  EXPECT_LT(last, 1431 / 8);  // 256 arrays: bottleneck well below minimal
}

TEST(ChipAllocator, NeverExceedsTheChip) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 100);
  ASSERT_TRUE(allocation.feasible);
  EXPECT_LE(allocation.arrays_used(), 100);
  for (const LayerAllocation& layer : allocation.layers) {
    EXPECT_GE(layer.arrays, layer.tiles);
  }
}

TEST(ChipAllocator, FillLatencyIsSumOfStages) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 64);
  Cycles sum = 0;
  for (const LayerAllocation& layer : allocation.layers) {
    sum += layer.makespan;
  }
  EXPECT_EQ(allocation.fill_latency(), sum);
}

TEST(ChipAllocator, VwSdkNeedsFewerCyclesPerChipThanIm2col) {
  // Same chip, both algorithms feasible: VW-SDK's pipeline interval must
  // not exceed im2col's (it never maps a layer worse).
  const NetworkMappingResult vw = vw_resnet();
  const NetworkMappingResult base = optimize_network(
      *make_mapper("im2col"), resnet18_paper(), k512x512);
  for (const Dim arrays : {64, 128, 512}) {
    const ChipAllocation vw_chip = allocate_chip(vw, arrays);
    const ChipAllocation base_chip = allocate_chip(base, arrays);
    ASSERT_TRUE(vw_chip.feasible && base_chip.feasible) << arrays;
    EXPECT_LE(vw_chip.bottleneck(), base_chip.bottleneck()) << arrays;
  }
}

TEST(ChipAllocator, Validation) {
  EXPECT_THROW(allocate_chip(vw_resnet(), 0), InvalidArgument);
  NetworkMappingResult empty;
  EXPECT_THROW(allocate_chip(empty, 64), InvalidArgument);
}

TEST(ChipAllocator, InfeasibleIsExplicit) {
  const ChipAllocation allocation = allocate_chip(vw_resnet(), 16);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_NE(allocation.infeasible_reason.find("23 arrays"),
            std::string::npos)
      << allocation.infeasible_reason;
  EXPECT_NE(allocation.to_string().find(allocation.infeasible_reason),
            std::string::npos);
}

TEST(ChipAllocator, StopsAtTheBottleneckFloor) {
  // LeNet-5 on 128x128: tiny serial totals.  A huge chip must stop once
  // every stage is at makespan 1 (the floor), with each stage holding
  // exactly ceil(serial / 1) arrays -- the old one-array-at-a-time
  // greedy kept burning spares on the plateau.
  const NetworkMappingResult result =
      optimize_network(*make_mapper("vw-sdk"), lenet5(), {128, 128});
  const ChipAllocation allocation = allocate_chip(result, 1000);
  ASSERT_TRUE(allocation.feasible);
  EXPECT_EQ(allocation.bottleneck(), 1);
  for (const LayerAllocation& layer : allocation.layers) {
    EXPECT_EQ(layer.arrays, static_cast<Dim>(layer.serial_cycles))
        << layer.layer_name;  // exactly ceil(serial / 1), nothing beyond
  }
  EXPECT_LT(allocation.arrays_used(), 1000);
}

TEST(ChipAllocator, PlateauJumpsNeverWasteArrays) {
  // Every allocated array count must be exactly the smallest that
  // achieves the stage's makespan: ceil(serial / makespan) == arrays.
  const NetworkMappingResult result = vw_resnet();
  for (const Dim arrays : {23, 32, 64, 128, 256, 400}) {
    const ChipAllocation allocation = allocate_chip(result, arrays);
    ASSERT_TRUE(allocation.feasible) << arrays;
    for (const LayerAllocation& layer : allocation.layers) {
      if (layer.arrays == static_cast<Dim>(layer.tiles)) {
        continue;  // the mandatory floor, not a water-filling choice
      }
      EXPECT_EQ(ceil_div(layer.serial_cycles, layer.makespan),
                layer.arrays)
          << layer.layer_name << " at chip size " << arrays;
    }
  }
}

TEST(ChipAllocator, CyclesObjectiveIsTheDefault) {
  const NetworkMappingResult result = vw_resnet();
  const ChipAllocation implicit = allocate_chip(result, 100);
  const ChipAllocation explicit_cycles =
      allocate_chip(result, 100, &cycles_objective());
  EXPECT_EQ(implicit.objective, "cycles");
  ASSERT_EQ(implicit.layers.size(), explicit_cycles.layers.size());
  for (std::size_t i = 0; i < implicit.layers.size(); ++i) {
    EXPECT_EQ(implicit.layers[i].arrays, explicit_cycles.layers[i].arrays);
    EXPECT_EQ(implicit.layers[i].makespan,
              explicit_cycles.layers[i].makespan);
  }
}

TEST(ChipAllocator, EnergyObjectiveKeepsTheResidentFloor) {
  // Spare arrays divide time, never conversions: under the energy
  // objective water-filling cannot improve any stage score, so the
  // allocation honestly stays at the mandatory tiles.
  const NetworkMappingResult result = vw_resnet();
  const ChipAllocation allocation =
      allocate_chip(result, 256, &energy_objective());
  ASSERT_TRUE(allocation.feasible);
  EXPECT_EQ(allocation.objective, "energy");
  EXPECT_EQ(allocation.arrays_used(),
            static_cast<Dim>(resident_array_demand(result)));
}

TEST(ChipAllocator, EdpObjectiveStillShrinksTheBottleneck) {
  const NetworkMappingResult result = vw_resnet();
  const ChipAllocation minimal = allocate_chip(result, 23, &edp_objective());
  const ChipAllocation roomy = allocate_chip(result, 256, &edp_objective());
  ASSERT_TRUE(minimal.feasible && roomy.feasible);
  EXPECT_GT(roomy.arrays_used(), minimal.arrays_used());
  EXPECT_LT(roomy.bottleneck(), minimal.bottleneck());
  // EDP prices delay linearly, so every stage's score shrank too.
  for (std::size_t i = 0; i < roomy.layers.size(); ++i) {
    EXPECT_LE(roomy.layers[i].score, minimal.layers[i].score);
  }
}

TEST(ChipAllocator, SaturationLeavesNoImprovableStage) {
  // Convergence under latency-priced objectives: when the allocator
  // stops, no stage's next ceil-division breakpoint fits the leftover
  // spares.  (A plain "stop when the max-score stage saturates" would
  // strand spares under edp, whose max-score stage need not be the
  // max-makespan stage.)
  const NetworkMappingResult result = vw_resnet();
  for (const Objective* objective :
       {&cycles_objective(), &edp_objective()}) {
    for (const Dim arrays : {32, 64, 256}) {
      const ChipAllocation allocation =
          allocate_chip(result, arrays, objective);
      ASSERT_TRUE(allocation.feasible);
      const Dim leftover = arrays - allocation.arrays_used();
      for (const LayerAllocation& layer : allocation.layers) {
        if (layer.makespan <= 1) {
          continue;  // at the floor; nothing to improve
        }
        const Count needed =
            ceil_div(layer.serial_cycles, layer.makespan - 1);
        EXPECT_GT(needed - layer.arrays, leftover)
            << layer.layer_name << " under " << objective->name()
            << " at chip size " << arrays;
      }
    }
  }
}

TEST(ChipAllocator, GroupedLayerDemandScalesWithGroups) {
  // A depthwise layer keeps G copies of its per-group tiles resident.
  Network net("grouped-net");
  net.add_layer(make_conv_layer("dense", 16, 3, 8, 8));
  ConvLayerDesc dw = make_conv_layer("dw", 14, 3, 8, 8);
  dw.groups = 8;
  net.add_layer(dw);
  const NetworkMappingResult result =
      optimize_network(*make_mapper("vw-sdk"), net, {128, 128});
  Count expected = 0;
  for (const LayerMapping& lm : result.layers) {
    expected += static_cast<Count>(lm.layer.groups) *
                lm.decision.cost.ar_cycles * lm.decision.cost.ac_cycles;
  }
  EXPECT_EQ(resident_array_demand(result), expected);
  EXPECT_GT(result.layers[1].layer.groups, 1);
  const ChipAllocation allocation =
      allocate_chip(result, static_cast<Dim>(expected));
  ASSERT_TRUE(allocation.feasible);
  EXPECT_EQ(allocation.layers[1].tiles,
            8 * result.layers[1].decision.cost.ar_cycles *
                result.layers[1].decision.cost.ac_cycles);
  EXPECT_EQ(allocation.layers[1].serial_cycles, result.layers[1].cycles());
}

TEST(ChipPlan, SingleChipMatchesAllocateChip) {
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;
  options.arrays_per_chip = 64;
  const ChipPlan plan = plan_chips(result, options);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.chips.size(), 1u);
  const ChipAllocation direct = allocate_chip(result, 64);
  EXPECT_EQ(plan.interval(), direct.bottleneck());
  EXPECT_EQ(plan.fill_latency(), direct.fill_latency());
  EXPECT_EQ(plan.arrays_used(), direct.arrays_used());
  EXPECT_EQ(plan.serial_cycles(), result.total_cycles());
}

TEST(ChipPlan, ShardsWhenDemandExceedsOneChip) {
  // ResNet-18 VW-SDK demand is 23 (largest layer 9); chips of 12 arrays
  // must shard.
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;
  options.arrays_per_chip = 12;
  const ChipPlan plan = plan_chips(result, options);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.chips.size(), 1u);

  // Sharding invariants: every chip's resident demand fits its budget,
  // the chips cover the layers contiguously in network order, and the
  // plan interval is the max chip interval.
  std::vector<std::string> names;
  Cycles worst = 0;
  for (const ChipAllocation& chip : plan.chips) {
    Count demand = 0;
    for (const LayerAllocation& layer : chip.layers) {
      demand += layer.tiles;
      names.push_back(layer.layer_name);
    }
    EXPECT_LE(demand, 12);
    EXPECT_LE(chip.arrays_used(), 12);
    worst = std::max(worst, chip.bottleneck());
  }
  EXPECT_EQ(plan.interval(), worst);
  ASSERT_EQ(names.size(), result.layers.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], result.layers[i].layer.name);
  }
}

TEST(ChipPlan, OversizeLayerIsExplicitlyInfeasible) {
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;
  options.arrays_per_chip = 4;  // conv4 needs 7, conv5 needs 9
  const ChipPlan plan = plan_chips(result, options);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("conv4"), std::string::npos)
      << plan.infeasible_reason;
  EXPECT_NE(plan.to_string().find("INFEASIBLE"), std::string::npos);
  EXPECT_THROW(plan.batch_cycles(1), Error);
}

TEST(ChipPlan, ChipBudgetIsRespected) {
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;
  options.arrays_per_chip = 12;
  options.max_chips = 1;  // demand 23 needs several 12-array chips
  const ChipPlan plan = plan_chips(result, options);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("1 chip"), std::string::npos)
      << plan.infeasible_reason;

  options.max_chips = 8;  // roomy budget: the planner uses what it needs
  const ChipPlan roomy = plan_chips(result, options);
  ASSERT_TRUE(roomy.feasible);
  EXPECT_LT(roomy.chips.size(), 8u);
}

TEST(ChipPlan, BatchedThroughputModel) {
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;
  options.arrays_per_chip = 64;
  const ChipPlan plan = plan_chips(result, options);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.batch_cycles(1), plan.fill_latency());
  EXPECT_EQ(plan.batch_cycles(16),
            plan.fill_latency() + 15 * plan.interval());
  // Steady state: the amortized per-inference cost approaches the
  // interval from above as the batch grows.
  const double at_8 = static_cast<double>(plan.batch_cycles(8)) / 8.0;
  const double at_64 = static_cast<double>(plan.batch_cycles(64)) / 64.0;
  EXPECT_GT(at_8, at_64);
  EXPECT_GE(at_64, static_cast<double>(plan.interval()));
  EXPECT_THROW(plan.batch_cycles(0), InvalidArgument);
}

TEST(ChipPlan, SpeedupAndBalanceAreReported) {
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;
  options.arrays_per_chip = 64;
  const ChipPlan plan = plan_chips(result, options);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.speedup(), 1.0);
  EXPECT_GT(plan.balance(), 0.0);
  EXPECT_LE(plan.balance(), 1.0);
  EXPECT_NE(plan.to_string().find("speedup"), std::string::npos);
}

TEST(ChipPlan, BatchCyclesOverflowIsStructuredNotNegative) {
  // fill + (batch-1) * interval with a ~5e18-cycle stage and a large
  // batch exceeds INT64_MAX; the contract is a thrown Overflow (wire
  // code "overflow"), never a wrapped negative latency.
  ChipPlan plan;
  plan.feasible = true;
  ChipAllocation chip;
  chip.feasible = true;
  LayerAllocation stage;
  stage.makespan = Cycles{5'000'000'000'000'000'000};  // 5e18
  chip.layers.push_back(stage);
  plan.chips.push_back(chip);
  EXPECT_EQ(plan.batch_cycles(1), stage.makespan);  // fill only
  EXPECT_THROW(plan.batch_cycles(1'000'000'000), Overflow);
  // The saturating diagnostic path stays available to callers that want
  // a pegged value instead (traffic report totals).
  EXPECT_EQ(saturating_add(stage.makespan, stage.makespan),
            std::numeric_limits<Cycles>::max());
}

TEST(ChipPlan, Validation) {
  const NetworkMappingResult result = vw_resnet();
  ChipPlanOptions options;  // arrays_per_chip unset
  EXPECT_THROW(plan_chips(result, options), InvalidArgument);
  options.arrays_per_chip = 8;
  options.max_chips = -1;
  EXPECT_THROW(plan_chips(result, options), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
