#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/im2col_mapper.h"
#include "core/vwsdk_mapper.h"
#include "tensor/conv_ref.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{96, 48};

std::vector<StageSpec> tiny_cnn() {
  // 12x12x2 -> conv3x3(4) + relu + pool2 -> 5x5x4 -> conv3x3(6) -> 3x3x6.
  std::vector<StageSpec> stages;
  StageSpec s1;
  s1.conv = make_conv_layer("conv1", 12, 3, 2, 4);
  s1.relu = true;
  s1.pool_window = 2;
  s1.pool_stride = 2;
  stages.push_back(s1);
  StageSpec s2;
  s2.conv = make_conv_layer("conv2", 5, 3, 4, 6);
  s2.relu = false;
  stages.push_back(s2);
  return stages;
}

Tensord tiny_input() {
  Rng rng(31);
  Tensord input = Tensord::feature_map(2, 12, 12);
  fill_random_int(input, rng, 3);
  return input;
}

TEST(Pipeline, RunsAndVerifiesEveryStage) {
  const VwSdkMapper mapper;
  const PipelineResult result =
      run_pipeline(tiny_cnn(), tiny_input(), mapper, kSmall);
  EXPECT_TRUE(result.all_verified) << result.summary();
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_EQ(result.stages[0].output_shape, (Shape4{1, 4, 5, 5}));
  EXPECT_EQ(result.stages[1].output_shape, (Shape4{1, 6, 3, 3}));
  EXPECT_EQ(result.output.shape(), (Shape4{1, 6, 3, 3}));
  EXPECT_GT(result.total_cycles, 0);
  EXPECT_GT(result.activity.cell_macs, 0);
}

TEST(Pipeline, MapperChoiceChangesCyclesNotValues) {
  const PipelineResult vw =
      run_pipeline(tiny_cnn(), tiny_input(), VwSdkMapper(), kSmall);
  const PipelineResult im2col =
      run_pipeline(tiny_cnn(), tiny_input(), Im2colMapper(), kSmall);
  EXPECT_TRUE(vw.all_verified);
  EXPECT_TRUE(im2col.all_verified);
  // Same weights (same seed), same functional output...
  EXPECT_TRUE(exactly_equal(vw.output, im2col.output));
  // ...but the variable-window mapping uses fewer cycles.
  EXPECT_LT(vw.total_cycles, im2col.total_cycles);
}

TEST(Pipeline, ReluAppliedWhenRequested) {
  std::vector<StageSpec> stages;
  StageSpec s;
  s.conv = make_conv_layer("conv1", 6, 3, 1, 2);
  s.relu = true;
  stages.push_back(s);
  Rng rng(7);
  Tensord input = Tensord::feature_map(1, 6, 6);
  fill_random_int(input, rng, 3);
  const PipelineResult result =
      run_pipeline(stages, input, VwSdkMapper(), kSmall);
  for (const double v : result.output.data()) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(Pipeline, ShapeMismatchRejected) {
  std::vector<StageSpec> stages = tiny_cnn();
  Tensord wrong = Tensord::feature_map(3, 12, 12);  // stage expects 2 ch
  EXPECT_THROW(run_pipeline(stages, wrong, VwSdkMapper(), kSmall),
               InvalidArgument);
}

TEST(Pipeline, EmptyStagesRejected) {
  EXPECT_THROW(run_pipeline({}, tiny_input(), VwSdkMapper(), kSmall),
               InvalidArgument);
}

TEST(Pipeline, PoolWithoutStrideRejected) {
  std::vector<StageSpec> stages = tiny_cnn();
  stages[0].pool_stride = 0;
  EXPECT_THROW(run_pipeline(stages, tiny_input(), VwSdkMapper(), kSmall),
               InvalidArgument);
}

/// The dense grouped-conv reference: per-group direct convolution of the
/// channel slices, concatenated output-channel-wise.  Weights follow the
/// pipeline's deterministic generation for stage `stage_index`.
Tensord grouped_reference(const ConvLayerDesc& conv, const Tensord& input,
                          Count stage_index, std::uint64_t weight_seed) {
  Rng rng(weight_seed + static_cast<std::uint64_t>(stage_index));
  Tensord weights =
      Tensord::weights(conv.out_channels, conv.group_in_channels(),
                       conv.kernel_h, conv.kernel_w);
  fill_random_int(weights, rng, 3);
  Tensord reference = Tensord::feature_map(conv.out_channels, conv.ofm_h(),
                                           conv.ofm_w());
  const Dim icg = conv.group_in_channels();
  const Dim ocg = conv.group_out_channels();
  for (Dim g = 0; g < conv.groups; ++g) {
    const Tensord group = conv2d_direct(
        slice_channels(input, g * icg, icg),
        slice_outer(weights, g * ocg, ocg), conv.config);
    write_channels(reference, group, g * ocg);
  }
  return reference;
}

TEST(Pipeline, DepthwiseStageMatchesDenseReference) {
  // Depthwise: G = IC = OC = 4, one channel per group.
  std::vector<StageSpec> stages;
  StageSpec s;
  s.conv = make_conv_layer("dw", 8, 3, 4, 4);
  s.conv.groups = 4;
  s.relu = false;
  stages.push_back(s);

  Rng rng(11);
  Tensord input = Tensord::feature_map(4, 8, 8);
  fill_random_int(input, rng, 3);

  const PipelineResult result =
      run_pipeline(stages, input, VwSdkMapper(), kSmall);
  EXPECT_TRUE(result.all_verified) << result.summary();
  EXPECT_EQ(result.output.shape(), (Shape4{1, 4, 6, 6}));
  EXPECT_TRUE(exactly_equal(result.output,
                            grouped_reference(s.conv, input, 0, 42)));
  // 4 groups x the per-group analytic cycles.
  EXPECT_EQ(result.total_cycles,
            4 * result.stages[0].decision.cost.total);
}

TEST(Pipeline, GroupedStageMatchesDenseReference) {
  // groups = 4 with more than one channel per group (IC/G = 2, OC/G = 3).
  std::vector<StageSpec> stages;
  StageSpec s;
  s.conv = make_conv_layer("g4", 9, 3, 8, 12);
  s.conv.groups = 4;
  s.relu = false;
  stages.push_back(s);

  Rng rng(13);
  Tensord input = Tensord::feature_map(8, 9, 9);
  fill_random_int(input, rng, 3);

  const PipelineResult result =
      run_pipeline(stages, input, VwSdkMapper(), kSmall);
  EXPECT_TRUE(result.all_verified) << result.summary();
  EXPECT_EQ(result.output.shape(), (Shape4{1, 12, 7, 7}));
  EXPECT_TRUE(exactly_equal(result.output,
                            grouped_reference(s.conv, input, 0, 42)));
  EXPECT_NE(result.summary().find("stage 1"), std::string::npos);
}

TEST(Pipeline, GroupedStagesChainWithDenseOnes) {
  // MobileNet-style block: dense 3x3, depthwise 3x3, pointwise 1x1.
  std::vector<StageSpec> stages;
  StageSpec dense;
  dense.conv = make_conv_layer("conv", 10, 3, 2, 6);
  dense.relu = true;
  stages.push_back(dense);
  StageSpec dw;
  dw.conv = make_conv_layer("dw", 8, 3, 6, 6);
  dw.conv.groups = 6;
  dw.relu = true;
  stages.push_back(dw);
  StageSpec pw;
  pw.conv = make_conv_layer("pw", 6, 1, 6, 8);
  pw.relu = false;
  stages.push_back(pw);

  Rng rng(17);
  Tensord input = Tensord::feature_map(2, 10, 10);
  fill_random_int(input, rng, 3);

  const PipelineResult result =
      run_pipeline(stages, input, VwSdkMapper(), kSmall);
  EXPECT_TRUE(result.all_verified) << result.summary();
  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_EQ(result.stages[1].output_shape, (Shape4{1, 6, 6, 6}));
  EXPECT_EQ(result.output.shape(), (Shape4{1, 8, 6, 6}));
  // The depthwise stage's verification sums all six groups' cycles.
  EXPECT_EQ(result.stages[1].verification.analytic_cycles,
            6 * result.stages[1].decision.cost.total);
  EXPECT_NE(result.summary().find("6 groups x ["), std::string::npos);
}

TEST(Pipeline, GroupsMustDivideChannels) {
  std::vector<StageSpec> stages;
  StageSpec s;
  s.conv = make_conv_layer("bad", 8, 3, 4, 6);
  s.conv.groups = 4;  // 4 does not divide OC = 6
  stages.push_back(s);
  Rng rng(3);
  Tensord input = Tensord::feature_map(4, 8, 8);
  fill_random_int(input, rng, 3);
  EXPECT_THROW(run_pipeline(stages, input, VwSdkMapper(), kSmall),
               InvalidArgument);
}

// The whole pipeline (dense + grouped stages, pooling, relu) must be
// indifferent to which reference backend verifies it: on the integer
// tensors the pipeline generates, scalar and gemm agree bitwise.
TEST(Pipeline, ReferenceBackendChoiceDoesNotChangeResults) {
  std::vector<StageSpec> stages = tiny_cnn();
  StageSpec dw;
  dw.conv = make_conv_layer("dw", 3, 3, 6, 6);
  dw.conv.groups = 6;
  dw.relu = false;
  stages.push_back(dw);

  ExecutionOptions scalar_opts;
  scalar_opts.ref_backend = "scalar";
  ExecutionOptions gemm_opts;
  gemm_opts.ref_backend = "gemm";
  const PipelineResult via_scalar = run_pipeline(
      stages, tiny_input(), VwSdkMapper(), kSmall, scalar_opts);
  const PipelineResult via_gemm = run_pipeline(
      stages, tiny_input(), VwSdkMapper(), kSmall, gemm_opts);
  EXPECT_TRUE(via_scalar.all_verified) << via_scalar.summary();
  EXPECT_TRUE(via_gemm.all_verified) << via_gemm.summary();
  EXPECT_TRUE(exactly_equal(via_scalar.output, via_gemm.output));
  EXPECT_EQ(via_scalar.summary(), via_gemm.summary());
}

TEST(Pipeline, SummaryListsStages) {
  const PipelineResult result =
      run_pipeline(tiny_cnn(), tiny_input(), VwSdkMapper(), kSmall);
  const std::string text = result.summary();
  EXPECT_NE(text.find("stage 1"), std::string::npos);
  EXPECT_NE(text.find("stage 2"), std::string::npos);
  EXPECT_NE(text.find("all stages verified"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
