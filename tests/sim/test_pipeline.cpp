#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/im2col_mapper.h"
#include "core/vwsdk_mapper.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{96, 48};

std::vector<StageSpec> tiny_cnn() {
  // 12x12x2 -> conv3x3(4) + relu + pool2 -> 5x5x4 -> conv3x3(6) -> 3x3x6.
  std::vector<StageSpec> stages;
  StageSpec s1;
  s1.conv = make_conv_layer("conv1", 12, 3, 2, 4);
  s1.relu = true;
  s1.pool_window = 2;
  s1.pool_stride = 2;
  stages.push_back(s1);
  StageSpec s2;
  s2.conv = make_conv_layer("conv2", 5, 3, 4, 6);
  s2.relu = false;
  stages.push_back(s2);
  return stages;
}

Tensord tiny_input() {
  Rng rng(31);
  Tensord input = Tensord::feature_map(2, 12, 12);
  fill_random_int(input, rng, 3);
  return input;
}

TEST(Pipeline, RunsAndVerifiesEveryStage) {
  const VwSdkMapper mapper;
  const PipelineResult result =
      run_pipeline(tiny_cnn(), tiny_input(), mapper, kSmall);
  EXPECT_TRUE(result.all_verified) << result.summary();
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_EQ(result.stages[0].output_shape, (Shape4{1, 4, 5, 5}));
  EXPECT_EQ(result.stages[1].output_shape, (Shape4{1, 6, 3, 3}));
  EXPECT_EQ(result.output.shape(), (Shape4{1, 6, 3, 3}));
  EXPECT_GT(result.total_cycles, 0);
  EXPECT_GT(result.activity.cell_macs, 0);
}

TEST(Pipeline, MapperChoiceChangesCyclesNotValues) {
  const PipelineResult vw =
      run_pipeline(tiny_cnn(), tiny_input(), VwSdkMapper(), kSmall);
  const PipelineResult im2col =
      run_pipeline(tiny_cnn(), tiny_input(), Im2colMapper(), kSmall);
  EXPECT_TRUE(vw.all_verified);
  EXPECT_TRUE(im2col.all_verified);
  // Same weights (same seed), same functional output...
  EXPECT_TRUE(exactly_equal(vw.output, im2col.output));
  // ...but the variable-window mapping uses fewer cycles.
  EXPECT_LT(vw.total_cycles, im2col.total_cycles);
}

TEST(Pipeline, ReluAppliedWhenRequested) {
  std::vector<StageSpec> stages;
  StageSpec s;
  s.conv = make_conv_layer("conv1", 6, 3, 1, 2);
  s.relu = true;
  stages.push_back(s);
  Rng rng(7);
  Tensord input = Tensord::feature_map(1, 6, 6);
  fill_random_int(input, rng, 3);
  const PipelineResult result =
      run_pipeline(stages, input, VwSdkMapper(), kSmall);
  for (const double v : result.output.data()) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(Pipeline, ShapeMismatchRejected) {
  std::vector<StageSpec> stages = tiny_cnn();
  Tensord wrong = Tensord::feature_map(3, 12, 12);  // stage expects 2 ch
  EXPECT_THROW(run_pipeline(stages, wrong, VwSdkMapper(), kSmall),
               InvalidArgument);
}

TEST(Pipeline, EmptyStagesRejected) {
  EXPECT_THROW(run_pipeline({}, tiny_input(), VwSdkMapper(), kSmall),
               InvalidArgument);
}

TEST(Pipeline, PoolWithoutStrideRejected) {
  std::vector<StageSpec> stages = tiny_cnn();
  stages[0].pool_stride = 0;
  EXPECT_THROW(run_pipeline(stages, tiny_input(), VwSdkMapper(), kSmall),
               InvalidArgument);
}

TEST(Pipeline, SummaryListsStages) {
  const PipelineResult result =
      run_pipeline(tiny_cnn(), tiny_input(), VwSdkMapper(), kSmall);
  const std::string text = result.summary();
  EXPECT_NE(text.find("stage 1"), std::string::npos);
  EXPECT_NE(text.find("stage 2"), std::string::npos);
  EXPECT_NE(text.find("all stages verified"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
