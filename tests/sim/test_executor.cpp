#include "sim/executor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "mapping/plan_builder.h"
#include "sim/latency_model.h"
#include "tensor/conv_ref.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{64, 32};

MappingPlan sample_plan() {
  const ConvShape shape = ConvShape::square(8, 3, 9, 40);
  return build_windowed_plan(shape, kSmall,
                             vw_cost(shape, kSmall, {4, 3}));
}

std::pair<Tensord, Tensord> sample_tensors(const ConvShape& shape,
                                           std::uint64_t seed) {
  Rng rng(seed);
  Tensord ifm =
      Tensord::feature_map(shape.in_channels, shape.ifm_h, shape.ifm_w);
  Tensord weights = Tensord::weights(shape.out_channels, shape.in_channels,
                                     shape.kernel_h, shape.kernel_w);
  fill_random_int(ifm, rng, 4);
  fill_random_int(weights, rng, 4);
  return {std::move(ifm), std::move(weights)};
}

TEST(Executor, CycleCountMatchesAnalyticModel) {
  const MappingPlan plan = sample_plan();
  const auto [ifm, weights] = sample_tensors(plan.shape, 1);
  const ExecutionResult result = execute_plan(plan, ifm, weights);
  EXPECT_EQ(result.cycles, plan.cost.total);
  EXPECT_EQ(result.activity.cycles, plan.cost.total);
}

TEST(Executor, ActivityMatchesAnalyticActivity) {
  const MappingPlan plan = sample_plan();
  const auto [ifm, weights] = sample_tensors(plan.shape, 2);
  const ExecutionResult result = execute_plan(plan, ifm, weights);
  const EnergyReport analytic =
      analytic_activity(plan.shape, plan.geometry, plan.cost);
  EXPECT_EQ(result.activity.cycles, analytic.cycles);
  EXPECT_EQ(result.activity.row_activations, analytic.row_activations);
  EXPECT_EQ(result.activity.col_reads, analytic.col_reads);
  EXPECT_EQ(result.activity.cell_macs, analytic.cell_macs);
}

TEST(Executor, AnalyticActivityMatchesForIm2colAndSmd) {
  for (const ConvShape& shape :
       {ConvShape::square(6, 3, 8, 10),    // im2col with AR split
        ConvShape::square(6, 3, 1, 2)}) {  // SMD with duplicates
    for (const MappingPlan& plan :
         {build_im2col_plan(shape, kSmall), build_smd_plan(shape, kSmall)}) {
      const auto [ifm, weights] = sample_tensors(plan.shape, 3);
      const ExecutionResult result = execute_plan(plan, ifm, weights);
      const EnergyReport analytic =
          analytic_activity(plan.shape, plan.geometry, plan.cost);
      EXPECT_EQ(result.activity.row_activations, analytic.row_activations);
      EXPECT_EQ(result.activity.col_reads, analytic.col_reads);
      EXPECT_EQ(result.activity.cell_macs, analytic.cell_macs);
    }
  }
}

TEST(Executor, ProgrammedCellsReported) {
  const MappingPlan plan = sample_plan();
  const auto [ifm, weights] = sample_tensors(plan.shape, 4);
  const ExecutionResult result = execute_plan(plan, ifm, weights);
  EXPECT_EQ(result.programmed_cells, plan.programmed_cells());
  EXPECT_EQ(result.arrays_used, static_cast<Count>(plan.tiles.size()));
  EXPECT_GT(result.min_tile_utilization, 0.0);
  EXPECT_GE(result.mean_tile_utilization, result.min_tile_utilization);
  EXPECT_LE(result.mean_tile_utilization, 1.0);
}

TEST(Executor, RejectsMismatchedTensors) {
  const MappingPlan plan = sample_plan();
  const auto [ifm, weights] = sample_tensors(plan.shape, 5);
  const Tensord wrong_ifm = Tensord::feature_map(2, 8, 8);
  EXPECT_THROW(execute_plan(plan, wrong_ifm, weights), InvalidArgument);
  const Tensord wrong_weights = Tensord::weights(40, 9, 5, 5);
  EXPECT_THROW(execute_plan(plan, ifm, wrong_weights), InvalidArgument);
}

TEST(Executor, ValidatesPlanUnlessDisabled) {
  MappingPlan plan = sample_plan();
  plan.cost.total += 1;  // corrupt: validator must object
  const auto [ifm, weights] = sample_tensors(plan.shape, 6);
  EXPECT_THROW(execute_plan(plan, ifm, weights), InternalError);
  // With validation off the executor itself notices the cycle mismatch at
  // the end (still InternalError, different path).
  ExecutionOptions options;
  options.validate_plan = false;
  EXPECT_THROW(execute_plan(plan, ifm, weights, options), InternalError);
}

TEST(Executor, QuantizedAdcDegradesGracefully) {
  const ConvShape shape = ConvShape::square(6, 3, 2, 3);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 4});
  const auto [ifm, weights] = sample_tensors(shape, 7);
  const Tensord reference = conv2d_direct(ifm, weights);

  ExecutionOptions coarse;
  coarse.adc = ConverterModel(4, -256.0, 256.0);
  const ExecutionResult coarse_result =
      execute_plan(plan, ifm, weights, coarse);
  const double coarse_err = max_abs_diff(coarse_result.ofm, reference);
  EXPECT_GT(coarse_err, 0.0);  // 4 bits over +-256: step 32, real error

  ExecutionOptions fine;
  fine.adc = ConverterModel(16, -256.0, 256.0);
  const ExecutionResult fine_result = execute_plan(plan, ifm, weights, fine);
  const double fine_err = max_abs_diff(fine_result.ofm, reference);
  EXPECT_LT(fine_err, coarse_err);
}

TEST(Executor, NoiseGrowsWithSigma) {
  const ConvShape shape = ConvShape::square(6, 3, 2, 3);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 4});
  const auto [ifm, weights] = sample_tensors(shape, 8);
  const Tensord reference = conv2d_direct(ifm, weights);

  double last_err = 0.0;
  for (const double sigma : {0.0, 0.01, 0.1}) {
    ExecutionOptions options;
    options.noise.multiplicative_sigma = sigma;
    options.noise_seed = 99;
    const ExecutionResult result = execute_plan(plan, ifm, weights, options);
    const double err = max_abs_diff(result.ofm, reference);
    if (sigma == 0.0) {
      EXPECT_EQ(err, 0.0);
    } else {
      EXPECT_GT(err, last_err);
    }
    last_err = err;
  }
}

TEST(Executor, NoiseIsDeterministicPerSeed) {
  const ConvShape shape = ConvShape::square(6, 3, 2, 3);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 4});
  const auto [ifm, weights] = sample_tensors(shape, 9);
  ExecutionOptions options;
  options.noise.additive_sigma = 0.05;
  options.noise_seed = 123;
  const ExecutionResult a = execute_plan(plan, ifm, weights, options);
  const ExecutionResult b = execute_plan(plan, ifm, weights, options);
  EXPECT_TRUE(exactly_equal(a.ofm, b.ofm));
}

TEST(Executor, ZeroInputYieldsZeroOutput) {
  const MappingPlan plan = sample_plan();
  const Tensord ifm = Tensord::feature_map(plan.shape.in_channels,
                                           plan.shape.ifm_h,
                                           plan.shape.ifm_w);
  auto [unused_ifm, weights] = sample_tensors(plan.shape, 10);
  const ExecutionResult result = execute_plan(plan, ifm, weights);
  for (const double v : result.ofm.data()) {
    EXPECT_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace vwsdk
