/// Functional verification of SDK's entire-channel windows that overflow
/// one array (Eq. (1)'s element-granular AR and column-granular AC) --
/// the VGG-13 conv2 regime, scaled down to executable sizes.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/sdk_mapper.h"
#include "mapping/plan_builder.h"
#include "mapping/plan_validate.h"
#include "sim/verifier.h"

namespace vwsdk {
namespace {

TEST(ElementSplit, SdkOversizedWindowBuildsAndValidates) {
  // 10x10, 3x3x8x4 on 64x16: im2col AR = ceil(72/64) = 2; SDK's 4x4
  // window needs 128 rows -> AR = 2 as well (allowed), 1024 > one array.
  const ConvShape shape = ConvShape::square(10, 3, 8, 4);
  const ArrayGeometry geometry{64, 16};
  const SdkMapper sdk;
  const MappingDecision decision = sdk.map(shape, geometry);
  ASSERT_EQ(decision.cost.window, (ParallelWindow{4, 4}));
  ASSERT_EQ(decision.cost.ar_cycles, 2);
  const MappingPlan plan =
      build_plan_for_cost(shape, geometry, decision.cost);
  EXPECT_EQ(plan.kind, PlanKind::kWindowedSplit);
  EXPECT_TRUE(validate_plan(plan).empty());
  // The first AR slice is a full array; the second holds the remainder
  // (128 - 64 = 64 flat elements), split mid-channel (64 / 16 = channel 4
  // starts at offset 0 -- actually element 64 = channel 4, offset 0).
  EXPECT_EQ(plan.tiles[0].rows.size(), 64u);
  EXPECT_EQ(plan.tiles[1].rows.size(), 64u);
}

TEST(ElementSplit, SdkOversizedWindowExecutesExactly) {
  const ConvShape shape = ConvShape::square(10, 3, 8, 4);
  const ArrayGeometry geometry{64, 16};
  const MappingDecision decision = SdkMapper().map(shape, geometry);
  const MappingPlan plan =
      build_plan_for_cost(shape, geometry, decision.cost);
  const VerificationReport report = verify_mapping_random(plan, 77);
  EXPECT_TRUE(report.exact_match) << report.summary;
  EXPECT_TRUE(report.cycles_match) << report.summary;
}

TEST(ElementSplit, ColumnSplitAcrossAcTiles) {
  // A wide window whose duplicated kernels exceed the columns: 6x4 window
  // on 3x3 kernel -> N_WP = 8; OC = 6 -> 48 flat columns over 16-column
  // arrays = 3 AC tiles, cutting one output channel's windows across
  // arrays.
  const ConvShape shape = ConvShape::square(8, 3, 2, 6);
  const ArrayGeometry geometry{48, 16};
  const CycleCost cost = sdk_cost(shape, geometry, {6, 4});
  ASSERT_TRUE(cost.feasible);
  ASSERT_EQ(cost.ac_cycles, 3);
  ASSERT_EQ(cost.ar_cycles, 1);
  const MappingPlan plan = build_element_split_plan(shape, geometry, cost);
  EXPECT_TRUE(validate_plan(plan).empty());
  const VerificationReport report = verify_mapping_random(plan, 99);
  EXPECT_TRUE(report.exact_match) << report.summary;
  EXPECT_TRUE(report.cycles_match) << report.summary;
}

TEST(ElementSplit, BothAxesSplitSimultaneously) {
  const ConvShape shape = ConvShape::square(9, 3, 6, 5);
  const ArrayGeometry geometry{40, 12};
  const CycleCost cost = sdk_cost(shape, geometry, {5, 4});
  ASSERT_TRUE(cost.feasible);
  ASSERT_GT(cost.ar_cycles, 1);
  ASSERT_GT(cost.ac_cycles, 1);
  const MappingPlan plan = build_element_split_plan(shape, geometry, cost);
  EXPECT_TRUE(validate_plan(plan).empty());
  const VerificationReport report = verify_mapping_random(plan, 13);
  EXPECT_TRUE(report.exact_match) << report.summary;
}

TEST(ElementSplit, RejectsNonSdkCosts) {
  // A channel-tiled VW cost whose AR differs from Eq. (1)'s element
  // split: IC = 16 on 64 rows with a 4x3 window gives IC_t = 5 ->
  // AR = ceil(16/5) = 4, while element splitting would need only
  // ceil(192/64) = 3 arrays.  The builder must refuse to mislabel it.
  const ConvShape shape = ConvShape::square(8, 3, 16, 6);
  const ArrayGeometry geometry{64, 32};
  const CycleCost vw = vw_cost(shape, geometry, {4, 3});
  ASSERT_EQ(vw.ar_cycles, 4);
  EXPECT_THROW(build_element_split_plan(shape, geometry, vw),
               InvalidArgument);
  // im2col costs are element-granular of the *kernel*, not of a window.
  const CycleCost im2col = im2col_cost(shape, geometry);
  EXPECT_THROW(build_element_split_plan(shape, geometry, im2col),
               InvalidArgument);
}

TEST(ElementSplit, DispatcherPrefersFittingPlans) {
  // When the SDK window fits one array, the normal windowed plan is used.
  const ConvShape shape = ConvShape::square(10, 3, 2, 4);
  const ArrayGeometry geometry{64, 16};
  const MappingDecision decision = SdkMapper().map(shape, geometry);
  if (!decision.is_im2col_fallback() &&
      decision.cost.window.area() * decision.cost.ic_t <= geometry.rows) {
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, decision.cost);
    EXPECT_EQ(plan.kind, PlanKind::kWindowed);
  }
}

}  // namespace
}  // namespace vwsdk
