#include "sim/reuse.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/im2col_mapper.h"
#include "core/vwsdk_mapper.h"
#include "mapping/plan_builder.h"
#include "sim/executor.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(Reuse, Im2colFetchesEachInteriorElementKernelAreaTimes) {
  // Large IFM, small kernel, everything fits: each of the ~I^2 elements is
  // covered by ~K^2 windows, and each window fetch drives its rows once.
  const ConvShape shape = ConvShape::square(64, 3, 4, 8);
  const MappingDecision decision = Im2colMapper().map(shape, {512, 512});
  const ReuseReport report = input_reuse(decision);
  // 62^2 windows x 9*4 rows / (4 * 64^2 elements) = ~8.4.
  EXPECT_NEAR(report.fetches_per_element, 8.4, 0.1);
}

TEST(Reuse, ParallelWindowsReduceFetches) {
  // The §I claim: SDK-style mappings reuse inputs across the duplicated
  // kernels.  VW-SDK must fetch less than im2col on every paper layer
  // where it forms a window.
  const VwSdkMapper vw;
  const Im2colMapper im2col;
  for (const ConvShape& shape :
       {ConvShape::square(224, 3, 3, 64), ConvShape::square(56, 3, 128, 256),
        ConvShape::square(14, 3, 256, 256)}) {
    const MappingDecision base = im2col.map(shape, k512x512);
    const MappingDecision cand = vw.map(shape, k512x512);
    ASSERT_FALSE(cand.is_im2col_fallback()) << shape.to_string();
    EXPECT_GT(fetch_reduction(base, cand), 1.0) << shape.to_string();
  }
}

TEST(Reuse, FallbackLayersFetchEqually) {
  const ConvShape conv5 = ConvShape::square(7, 3, 512, 512);
  const MappingDecision base = Im2colMapper().map(conv5, k512x512);
  const MappingDecision cand = VwSdkMapper().map(conv5, k512x512);
  EXPECT_DOUBLE_EQ(fetch_reduction(base, cand), 1.0);
}

TEST(Reuse, MatchesExecutedRowDrives) {
  // The analytic fetch count is exactly what the executor performs.
  const ConvShape shape = ConvShape::square(10, 3, 6, 8);
  const ArrayGeometry geometry{96, 48};
  const MappingDecision decision = VwSdkMapper().map(shape, geometry);
  const MappingPlan plan =
      build_plan_for_cost(shape, geometry, decision.cost);
  Rng rng(3);
  Tensord ifm = Tensord::feature_map(6, 10, 10);
  Tensord weights = Tensord::weights(8, 6, 3, 3);
  fill_random_int(ifm, rng, 3);
  fill_random_int(weights, rng, 3);
  const ExecutionResult executed = execute_plan(plan, ifm, weights);
  EXPECT_EQ(input_reuse(decision).row_drives,
            executed.activity.row_activations);
}

TEST(Reuse, ReportFormatsAndValidates) {
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  const MappingDecision decision = VwSdkMapper().map(shape, k512x512);
  const std::string text = input_reuse(decision).to_string();
  EXPECT_NE(text.find("fetches/element"), std::string::npos);

  MappingDecision bad = decision;
  bad.cost.feasible = false;
  EXPECT_THROW(input_reuse(bad), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
