#include "sim/latency_model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/im2col_mapper.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(LatencyModel, FewerCyclesMeansLessEnergyAndLatency) {
  // The paper's core energy argument: VW-SDK's cycle reduction shows up
  // directly in conversion energy (full-array accounting: all converters
  // fire every cycle) and in latency.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const EnergyParams params;
  const LatencyEstimate im2col =
      estimate_layer(Im2colMapper().map(conv5, k512x512), params);
  const LatencyEstimate vw =
      estimate_layer(VwSdkMapper().map(conv5, k512x512), params);
  EXPECT_LT(vw.cycles, im2col.cycles);
  EXPECT_LT(vw.latency_ns, im2col.latency_ns);
  EXPECT_LT(vw.energy_full_array_pj, im2col.energy_full_array_pj);
  // Full-array energy is proportional to cycles up to the (small) cell
  // term, so the ratios track each other.
  EXPECT_NEAR(im2col.energy_full_array_pj / vw.energy_full_array_pj,
              static_cast<double>(im2col.cycles) /
                  static_cast<double>(vw.cycles),
              0.15);
}

TEST(LatencyModel, ActiveAccountingNuancePinned) {
  // Under per-active-column accounting the picture is subtler: VW-SDK's
  // channel-granular AR on conv5 is 4 vs im2col's element-granular 3, so
  // each output needs more partial-sum conversions and VW-SDK's *active*
  // conversion energy exceeds im2col's despite 1.5x fewer cycles.  This
  // is a genuine finding of the detailed model (see bench_energy), pinned
  // here so it does not silently change.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const EnergyParams params;
  const LatencyEstimate im2col =
      estimate_layer(Im2colMapper().map(conv5, k512x512), params);
  const LatencyEstimate vw =
      estimate_layer(VwSdkMapper().map(conv5, k512x512), params);
  EXPECT_GT(vw.energy_pj, im2col.energy_pj);
}

TEST(LatencyModel, ConversionsDominateWithDefaults) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const LatencyEstimate estimate =
      estimate_layer(VwSdkMapper().map(conv5, k512x512), EnergyParams{});
  EXPECT_GT(estimate.conversion_fraction, 0.80);
}

TEST(LatencyModel, ParallelArraysShortenLatencyNotEnergy) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const EnergyParams params;
  const MappingDecision decision = VwSdkMapper().map(conv5, k512x512);
  const LatencyEstimate serial = estimate_layer(decision, params, 1);
  const LatencyEstimate parallel = estimate_layer(decision, params, 4);
  EXPECT_LT(parallel.latency_ns, serial.latency_ns);
  EXPECT_DOUBLE_EQ(parallel.energy_pj, serial.energy_pj);
  // conv5's VW mapping has AR*AC = 4 tiles: latency / 4.
  EXPECT_DOUBLE_EQ(parallel.latency_ns, serial.latency_ns / 4.0);
}

TEST(LatencyModel, ParallelismCappedByTiles) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const MappingDecision decision = VwSdkMapper().map(conv5, k512x512);
  const LatencyEstimate p4 = estimate_layer(decision, EnergyParams{}, 4);
  const LatencyEstimate p64 = estimate_layer(decision, EnergyParams{}, 64);
  EXPECT_DOUBLE_EQ(p4.latency_ns, p64.latency_ns);  // only 4 tiles exist
  EXPECT_THROW(estimate_layer(decision, EnergyParams{}, 0), InvalidArgument);
}

TEST(LatencyModel, AnalyticActivityRequiresFeasible) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost bad = vw_cost(conv5, k512x512, {30, 30});
  EXPECT_THROW(analytic_activity(conv5, k512x512, bad), InvalidArgument);
}

TEST(LatencyModel, ToStringSummarizes) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const LatencyEstimate estimate =
      estimate_layer(VwSdkMapper().map(conv5, k512x512), EnergyParams{});
  const std::string text = estimate.to_string();
  EXPECT_NE(text.find("cycles=5832"), std::string::npos);
  EXPECT_NE(text.find("pJ"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
