#include "sim/des.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.at(30, [&] { order.push_back(3); });
  queue.at(10, [&] { order.push_back(1); });
  queue.at(20, [&] { order.push_back(2); });
  EXPECT_EQ(queue.run_all(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesRunInSchedulingOrder) {
  // FIFO tie-breaking is the determinism keystone: a heap alone leaves
  // equal-time order unspecified.
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    queue.at(5, [&order, i] { order.push_back(i); });
  }
  queue.run_all();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, AfterSchedulesRelativeToNow) {
  EventQueue queue;
  Cycles seen = -1;
  queue.at(100, [&] { queue.after(25, [&] { seen = queue.now(); }); });
  queue.run_all();
  EXPECT_EQ(seen, 125);
}

TEST(EventQueue, RunUntilStopsAtHorizonAndAdvancesNow) {
  EventQueue queue;
  std::vector<Cycles> seen;
  queue.at(10, [&] { seen.push_back(queue.now()); });
  queue.at(50, [&] { seen.push_back(queue.now()); });
  queue.at(90, [&] { seen.push_back(queue.now()); });
  EXPECT_EQ(queue.run_until(50), 2);  // 10 and 50 run, 90 stays pending
  EXPECT_EQ(seen, (std::vector<Cycles>{10, 50}));
  EXPECT_EQ(queue.now(), 50);
  EXPECT_EQ(queue.pending(), 1);
  EXPECT_EQ(queue.run_until(200), 1);
  EXPECT_EQ(queue.now(), 200);  // advances to the horizon, not the event
  EXPECT_EQ(queue.processed(), 3);
}

TEST(EventQueue, CascadesWithinTheHorizonRun) {
  // An event at t <= horizon scheduling another at t' <= horizon must
  // see it run in the same run_until call.
  EventQueue queue;
  int depth = 0;
  queue.at(10, [&] {
    ++depth;
    queue.after(10, [&] { ++depth; });
  });
  EXPECT_EQ(queue.run_until(20), 2);
  EXPECT_EQ(depth, 2);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue queue;
  queue.at(50, [] {});
  queue.run_all();
  EXPECT_EQ(queue.now(), 50);
  EXPECT_THROW(queue.at(49, [] {}), InvalidArgument);
  EXPECT_THROW(queue.after(-1, [] {}), InvalidArgument);
  EXPECT_THROW(queue.at(60, nullptr), InvalidArgument);
}

TEST(EventQueue, RunUntilRejectsPastHorizon) {
  EventQueue queue;
  queue.run_until(100);
  EXPECT_THROW(queue.run_until(99), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
