#include "sim/traffic.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "core/serialize.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

/// A one-chip VGG-13 pipeline: the fixture every simulation test runs on.
ChipPlan vgg_plan(Dim arrays_per_chip = 64) {
  const NetworkMappingResult mapping = optimize_network(
      *make_mapper("vw-sdk"), vgg13_paper(), k512x512);
  ChipPlanOptions options;
  options.arrays_per_chip = arrays_per_chip;
  return plan_chips(mapping, options);
}

ChipPlan resnet_plan() {
  const NetworkMappingResult mapping = optimize_network(
      *make_mapper("vw-sdk"), resnet18_paper(), k512x512);
  ChipPlanOptions options;
  options.arrays_per_chip = 64;
  return plan_chips(mapping, options);
}

TEST(Traffic, SameSeedIsByteIdenticalAtAnyThreadCount) {
  // The simulator is single-threaded on the event queue by design, so
  // VWSDK_THREADS must be irrelevant; assert byte identity of the full
  // JSON payload across runs bracketing a thread-count change.
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 50.0;
  options.duration = 2'000'000;
  const std::string first = to_json(simulate_traffic({plan}, options));
  ASSERT_EQ(setenv("VWSDK_THREADS", "7", 1), 0);
  const std::string second = to_json(simulate_traffic({plan}, options));
  ASSERT_EQ(unsetenv("VWSDK_THREADS"), 0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, to_json(simulate_traffic({plan}, options)));
}

TEST(Traffic, DifferentSeedsDiverge) {
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 50.0;
  options.duration = 2'000'000;
  options.seed = 1;
  const TrafficReport a = simulate_traffic({plan}, options);
  options.seed = 2;
  const TrafficReport b = simulate_traffic({plan}, options);
  EXPECT_NE(to_json(a), to_json(b));
}

TEST(Traffic, ConservationUnderOverloadWithBoundedQueue) {
  // Offer ~3x a single replica's serial capacity with a tight queue:
  // every arrival must be accounted for as completed, still in flight,
  // or rejected -- nothing created, nothing lost.
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 250.0;
  options.duration = 2'000'000;
  options.max_queue = 4;
  const TrafficReport report = simulate_traffic({plan}, options);
  const NetworkTraffic& net = report.networks.front();
  EXPECT_GT(net.arrivals, 0);
  EXPECT_GT(net.rejected, 0);
  EXPECT_GT(net.in_flight, 0);
  EXPECT_EQ(net.arrivals, net.completions + net.in_flight + net.rejected);
  EXPECT_EQ(report.total_arrivals(), report.total_completions() +
                                         report.total_in_flight() +
                                         report.total_rejected());
}

TEST(Traffic, LatencyNeverBelowServiceTime) {
  // Queueing can only add: the fastest possible completion is an
  // arrival that starts instantly in a batch of one, paying the fill.
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 100.0;
  options.duration = 2'000'000;
  const TrafficReport report = simulate_traffic({plan}, options);
  const NetworkTraffic& net = report.networks.front();
  ASSERT_GT(net.completions, 0);
  EXPECT_GE(net.latency_min, plan.batch_cycles(1));
  EXPECT_LE(net.p50, net.p95);
  EXPECT_LE(net.p95, net.p99);
  EXPECT_LE(net.p99, net.p999);
  EXPECT_LE(net.p999, net.latency_max);
}

TEST(Traffic, MeanWaitMatchesMD1AtLowUtilization) {
  // With max_batch 1, no window, and one replica, each replica is an
  // M/D/1 queue with deterministic service D = batch_cycles(1).
  // Pollaczek-Khinchine: Wq = lambda * D^2 / (2 * (1 - rho)).
  const ChipPlan plan = vgg_plan();
  const auto service = static_cast<double>(plan.batch_cycles(1));
  const double rho = 0.30;
  const double lambda = rho / service;  // arrivals per cycle
  TrafficOptions options;
  options.rate = lambda * 1.0e6;
  // ~30k arrivals: enough to beat the sampling noise at a 10% band.
  options.duration = static_cast<Cycles>(30'000.0 / lambda);
  const TrafficReport report = simulate_traffic({plan}, options);
  const NetworkTraffic& net = report.networks.front();
  ASSERT_GT(net.completions, 10'000);
  const double expected = lambda * service * service / (2.0 * (1.0 - rho));
  EXPECT_NEAR(net.mean_wait, expected, 0.10 * expected)
      << "service=" << service << " arrivals=" << net.arrivals;
  // And the latency mean is wait + service within the same tolerance.
  EXPECT_NEAR(net.mean_latency, expected + service, 0.10 * expected)
      << "mean_latency=" << net.mean_latency;
}

TEST(Traffic, BatchingWindowAmortizesOverload) {
  // At ~4x serial capacity, a batch-of-8 window must serve strictly
  // more requests than one-at-a-time service: fill + (B-1) x interval
  // beats B x fill whenever interval < fill.
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 300.0;
  options.duration = 4'000'000;
  const TrafficReport serial = simulate_traffic({plan}, options);
  options.max_batch = 8;
  options.batch_window = plan.interval();
  const TrafficReport batched = simulate_traffic({plan}, options);
  EXPECT_EQ(serial.networks.front().arrivals,
            batched.networks.front().arrivals);  // same seeded stream
  EXPECT_GT(batched.networks.front().completions,
            serial.networks.front().completions);
  EXPECT_GT(batched.networks.front().mean_batch, 1.5);
  EXPECT_DOUBLE_EQ(serial.networks.front().mean_batch, 1.0);
}

TEST(Traffic, CoResidentNetworksSimulateIndependentStreams) {
  const ChipPlan vgg = vgg_plan();
  const ChipPlan resnet = resnet_plan();
  TrafficOptions options;
  options.rate = 40.0;
  options.duration = 2'000'000;
  const TrafficReport both = simulate_traffic({vgg, resnet}, options);
  ASSERT_EQ(both.networks.size(), 2u);
  EXPECT_EQ(both.networks[0].network, "VGG-13");
  EXPECT_EQ(both.networks[1].network, "ResNet-18");
  EXPECT_GT(both.networks[0].arrivals, 0);
  EXPECT_GT(both.networks[1].arrivals, 0);
  // Stream 0 is seeded from draw 0 of the root seed, so VGG-13 alone
  // sees the identical arrival process it sees co-resident.
  const TrafficReport alone = simulate_traffic({vgg}, options);
  EXPECT_EQ(alone.networks[0].arrivals, both.networks[0].arrivals);
  EXPECT_EQ(alone.networks[0].p99, both.networks[0].p99);
}

TEST(Traffic, RejectsInvalidInputs) {
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 10.0;
  options.replicas = 0;
  EXPECT_THROW(simulate_traffic({plan}, options), InvalidArgument);
  options.replicas = 1;
  options.max_batch = 0;
  EXPECT_THROW(simulate_traffic({plan}, options), InvalidArgument);
  options.max_batch = 1;
  options.duration = 0;
  EXPECT_THROW(simulate_traffic({plan}, options), InvalidArgument);
  options.duration = 1000;
  EXPECT_THROW(simulate_traffic({}, options), InvalidArgument);
  EXPECT_THROW(simulate_traffic({plan, plan}, options), InvalidArgument);

  ChipPlan infeasible = plan;
  infeasible.feasible = false;
  infeasible.infeasible_reason = "forced";
  EXPECT_THROW(simulate_traffic({infeasible}, options), InvalidArgument);
}

TEST(TrafficTrace, ReplaysArrivalsVerbatim) {
  const ChipPlan plan = vgg_plan();
  ArrivalTrace trace;
  trace.arrivals.push_back({0, ""});
  trace.arrivals.push_back({1'000, "VGG-13"});
  trace.arrivals.push_back({500'000, ""});
  const TrafficReport report = simulate_trace({plan}, trace, {});
  const NetworkTraffic& net = report.networks.front();
  EXPECT_EQ(report.source, "trace");
  EXPECT_EQ(net.arrivals, 3);
  EXPECT_EQ(net.completions, 3);  // trace mode drains fully
  EXPECT_EQ(net.in_flight, 0);
  // Drain time: the last arrival lands on an idle replica and pays
  // exactly one fill.
  EXPECT_EQ(report.duration, 500'000 + plan.batch_cycles(1));
}

TEST(TrafficTrace, UnknownNetworkNameThrows) {
  const ChipPlan plan = vgg_plan();
  ArrivalTrace trace;
  trace.arrivals.push_back({0, "no-such-net"});
  EXPECT_THROW(simulate_trace({plan}, trace, {}), InvalidArgument);
}

TEST(TrafficTrace, CsvParserAcceptsSchemaAndRejectsGarbage) {
  std::istringstream good("# comment\ntime,net\n0,a\n10,b\n10,\n");
  const ArrivalTrace trace = parse_arrival_trace_csv(good);
  ASSERT_EQ(trace.arrivals.size(), 3u);
  EXPECT_EQ(trace.arrivals[0].time, 0);
  EXPECT_EQ(trace.arrivals[0].net, "a");
  EXPECT_EQ(trace.arrivals[2].time, 10);
  EXPECT_TRUE(trace.arrivals[2].net.empty());

  std::istringstream time_only("time\n5\n7\n");
  EXPECT_EQ(parse_arrival_trace_csv(time_only).arrivals.size(), 2u);

  std::istringstream empty("");
  EXPECT_THROW(parse_arrival_trace_csv(empty), InvalidArgument);
  std::istringstream no_time("net\na\n");
  EXPECT_THROW(parse_arrival_trace_csv(no_time), InvalidArgument);
  std::istringstream unknown_col("time,weight\n1,2\n");
  EXPECT_THROW(parse_arrival_trace_csv(unknown_col), InvalidArgument);
  std::istringstream decreasing("time\n10\n9\n");
  EXPECT_THROW(parse_arrival_trace_csv(decreasing), InvalidArgument);
  std::istringstream negative("time\n-1\n");
  EXPECT_THROW(parse_arrival_trace_csv(negative), InvalidArgument);
  std::istringstream ragged("time,net\n1\n");
  EXPECT_THROW(parse_arrival_trace_csv(ragged), InvalidArgument);
}

TEST(TrafficTrace, JsonParserAcceptsSchemaAndRejectsGarbage) {
  const ArrivalTrace trace = parse_arrival_trace_json(
      R"({"arrivals":[{"time":0},{"time":3,"net":"x"}]})");
  ASSERT_EQ(trace.arrivals.size(), 2u);
  EXPECT_EQ(trace.arrivals[1].time, 3);
  EXPECT_EQ(trace.arrivals[1].net, "x");

  EXPECT_THROW(parse_arrival_trace_json("[]"), InvalidArgument);
  EXPECT_THROW(parse_arrival_trace_json("{}"), InvalidArgument);
  EXPECT_THROW(parse_arrival_trace_json(R"({"arrivals":1})"),
               InvalidArgument);
  EXPECT_THROW(parse_arrival_trace_json(R"({"arrivals":[],"x":1})"),
               InvalidArgument);
  EXPECT_THROW(parse_arrival_trace_json(R"({"arrivals":[{"t":1}]})"),
               InvalidArgument);
  EXPECT_THROW(parse_arrival_trace_json(R"({"arrivals":[{"time":-1}]})"),
               InvalidArgument);
  EXPECT_THROW(
      parse_arrival_trace_json(R"({"arrivals":[{"time":5},{"time":4}]})"),
      InvalidArgument);
}

TEST(Capacity, FindsSmallestReplicaCountWithFailingProof) {
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 300.0;
  options.duration = 2'000'000;
  const Cycles slo = 2 * plan.batch_cycles(1);
  const CapacityResult capacity = plan_capacity(plan, slo, options);
  EXPECT_GT(capacity.replicas, 1);
  EXPECT_EQ(capacity.chips,
            capacity.replicas * static_cast<Count>(plan.chips.size()));
  EXPECT_LE(capacity.p99, slo);
  // Proof of minimality: one replica fewer was simulated and fails.
  EXPECT_EQ(capacity.lower_replicas, capacity.replicas - 1);
  EXPECT_GT(capacity.lower_p99, slo);
  // The embedded report is the winning count's simulation.
  EXPECT_EQ(capacity.report.networks.front().replicas, capacity.replicas);
  EXPECT_EQ(capacity.report.networks.front().p99, capacity.p99);
}

TEST(Capacity, UnmeetableSloThrows) {
  const ChipPlan plan = vgg_plan();
  TrafficOptions options;
  options.rate = 10.0;
  // Below the unloaded fill: impossible at any scale, and said so.
  EXPECT_THROW(plan_capacity(plan, plan.batch_cycles(1) - 1, options),
               Error);
  options.rate = 0.0;
  EXPECT_THROW(plan_capacity(plan, 100'000, options), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
