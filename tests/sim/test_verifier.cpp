#include "sim/verifier.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "mapping/plan_builder.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{64, 32};

TEST(Verifier, ReportsExactMatchForIdealExecution) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 3});
  const VerificationReport report = verify_mapping_random(plan, 42);
  EXPECT_TRUE(report.exact_match);
  EXPECT_EQ(report.max_abs_error, 0.0);
  EXPECT_TRUE(report.cycles_match);
  EXPECT_GT(report.programmed_cells, 0);
  EXPECT_NE(report.summary.find("EXACT match"), std::string::npos);
}

TEST(Verifier, DeterministicForSeed) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 3});
  const VerificationReport a = verify_mapping_random(plan, 7);
  const VerificationReport b = verify_mapping_random(plan, 7);
  EXPECT_EQ(a.summary, b.summary);
}

TEST(Verifier, QuantizedAdcReportsBoundedError) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 3});
  ExecutionOptions options;
  options.adc = ConverterModel(8, -512.0, 512.0);
  const VerificationReport report = verify_mapping_random(plan, 42, 4,
                                                          options);
  // Quantization error is bounded by steps * AR accumulations.
  EXPECT_FALSE(report.exact_match);
  EXPECT_GT(report.max_abs_error, 0.0);
  EXPECT_LE(report.max_abs_error, 4 * 4.0 * plan.cost.ar_cycles);
  EXPECT_TRUE(report.cycles_match);
}

TEST(Verifier, ExplicitTensorsOverload) {
  const ConvShape shape = ConvShape::square(6, 3, 2, 3);
  const MappingPlan plan = build_im2col_plan(shape, kSmall);
  Rng rng(5);
  Tensord ifm = Tensord::feature_map(2, 6, 6);
  Tensord weights = Tensord::weights(3, 2, 3, 3);
  fill_random_int(ifm, rng, 2);
  fill_random_int(weights, rng, 2);
  const VerificationReport report = verify_mapping(plan, ifm, weights);
  EXPECT_TRUE(report.exact_match);
  EXPECT_EQ(report.analytic_cycles, plan.cost.total);
}

// The reference backend is selectable; on integer tensors the scalar
// oracle and the gemm engine must yield identical reports.
TEST(Verifier, BackendSelectionAgreesAcrossBackends) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingPlan plan = build_plan_for_window(shape, kSmall, {4, 3});
  ExecutionOptions scalar_opts;
  scalar_opts.ref_backend = "scalar";
  ExecutionOptions gemm_opts;
  gemm_opts.ref_backend = "gemm";
  const VerificationReport via_scalar =
      verify_mapping_random(plan, 42, 4, scalar_opts);
  const VerificationReport via_gemm =
      verify_mapping_random(plan, 42, 4, gemm_opts);
  EXPECT_TRUE(via_scalar.exact_match);
  EXPECT_TRUE(via_gemm.exact_match);
  EXPECT_EQ(via_scalar.summary, via_gemm.summary);
}

TEST(Verifier, UnknownBackendThrowsNotFound) {
  const ConvShape shape = ConvShape::square(6, 3, 2, 3);
  const MappingPlan plan = build_im2col_plan(shape, kSmall);
  ExecutionOptions options;
  options.ref_backend = "no-such-backend";
  EXPECT_THROW(verify_mapping_random(plan, 1, 1, options), NotFound);
}

TEST(Verifier, ReferenceConvolutionReusesWorkspace) {
  const ConvShape shape = ConvShape::square(6, 3, 2, 3);
  const MappingPlan plan = build_im2col_plan(shape, kSmall);
  Rng rng(5);
  Tensord ifm = Tensord::feature_map(2, 6, 6);
  Tensord weights = Tensord::weights(3, 2, 3, 3);
  fill_random_int(ifm, rng, 2);
  fill_random_int(weights, rng, 2);
  ConvWorkspace workspace;
  const Tensord first = reference_convolution(plan, ifm, weights, {},
                                              &workspace);
  // A second call through the now-sized workspace must not perturb
  // the result.
  const Tensord second = reference_convolution(plan, ifm, weights, {},
                                               &workspace);
  EXPECT_TRUE(exactly_equal(first, second));
}

}  // namespace
}  // namespace vwsdk
