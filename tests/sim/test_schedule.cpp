#include "sim/schedule.h"

#include <gtest/gtest.h>

#include "mapping/plan_builder.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{64, 32};

TEST(Schedule, LengthEqualsAnalyticCycles) {
  const ConvShape shape = ConvShape::square(8, 3, 9, 40);
  const MappingPlan plan =
      build_windowed_plan(shape, kSmall, vw_cost(shape, kSmall, {4, 3}));
  const auto schedule = build_schedule(plan);
  EXPECT_EQ(static_cast<Cycles>(schedule.size()), plan.cost.total);
  EXPECT_EQ(schedule_cycle_count(plan), plan.cost.total);
}

TEST(Schedule, OrderIsBaseThenArThenAc) {
  const ConvShape shape = ConvShape::square(8, 3, 9, 40);
  const MappingPlan plan =
      build_windowed_plan(shape, kSmall, vw_cost(shape, kSmall, {4, 3}));
  const auto schedule = build_schedule(plan);
  // AR = 2, AC = 3: the first six cycles share the first base.
  ASSERT_GE(schedule.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(schedule[static_cast<std::size_t>(i)].base_x, 0);
    EXPECT_EQ(schedule[static_cast<std::size_t>(i)].base_y, 0);
  }
  EXPECT_EQ(schedule[0].ar, 0);
  EXPECT_EQ(schedule[0].ac, 0);
  EXPECT_EQ(schedule[1].ac, 1);
  EXPECT_EQ(schedule[3].ar, 1);
  // Indices increase monotonically.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].index, schedule[i - 1].index + 1);
  }
}

TEST(Schedule, BasesAdvanceRowMajor) {
  const ConvShape shape = ConvShape::square(7, 3, 2, 2);
  const MappingPlan plan =
      build_windowed_plan(shape, kSmall, vw_cost(shape, kSmall, {4, 3}));
  const auto schedule = build_schedule(plan);
  // One tile per base: sequence of (y, x) must be row-major.
  ASSERT_EQ(plan.tiles.size(), 1u);
  Dim last_y = -1;
  Dim last_x = -1;
  for (const CycleDescriptor& cycle : schedule) {
    if (cycle.base_y == last_y) {
      EXPECT_GT(cycle.base_x, last_x);
    } else {
      EXPECT_GT(cycle.base_y, last_y);
    }
    last_y = cycle.base_y;
    last_x = cycle.base_x;
  }
}

TEST(Schedule, SmdChunksWindows) {
  const ConvShape shape = ConvShape::square(6, 3, 1, 2);
  const MappingPlan plan = build_smd_plan(shape, kSmall);
  ASSERT_EQ(plan.cost.smd_duplicates, 7);
  const auto schedule = build_schedule(plan);
  // 16 windows in chunks of 7 -> 3 cycles.
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].first_window, 0);
  EXPECT_EQ(schedule[1].first_window, 7);
  EXPECT_EQ(schedule[2].first_window, 14);
}

TEST(Schedule, Im2colVisitsEveryWindowOnce) {
  const ConvShape shape = ConvShape::square(6, 3, 1, 1);
  const MappingPlan plan = build_im2col_plan(shape, kSmall);
  const auto schedule = build_schedule(plan);
  EXPECT_EQ(schedule.size(), 16u);  // 4x4 windows, one tile
  std::set<std::pair<Dim, Dim>> bases;
  for (const CycleDescriptor& cycle : schedule) {
    bases.emplace(cycle.base_y, cycle.base_x);
  }
  EXPECT_EQ(bases.size(), 16u);
}

}  // namespace
}  // namespace vwsdk
