/// The repo's strongest correctness evidence: every mapping strategy,
/// executed cell by cell on the functional crossbar, must reproduce the
/// reference convolution EXACTLY (integer-valued tensors, ideal ADC).

#include <gtest/gtest.h>

#include "core/mapping_decision.h"
#include "mapping/plan_builder.h"
#include "sim/verifier.h"

namespace vwsdk {
namespace {

struct EquivalenceCase {
  const char* label;
  Dim image, kernel, ic, oc, rows, cols;
};

std::ostream& operator<<(std::ostream& os, const EquivalenceCase& c) {
  return os << c.label;
}

class MapperEquivalence
    : public ::testing::TestWithParam<
          std::tuple<const char*, EquivalenceCase>> {};

TEST_P(MapperEquivalence, CrossbarMatchesReferenceConv) {
  const auto& [mapper_name, c] = GetParam();
  const ConvShape shape = ConvShape::square(c.image, c.kernel, c.ic, c.oc);
  const ArrayGeometry geometry{c.rows, c.cols};
  const MappingDecision decision =
      make_mapper(mapper_name)->map(shape, geometry);
  const MappingPlan plan =
      build_plan_for_cost(shape, geometry, decision.cost);
  const VerificationReport report = verify_mapping_random(plan, 0xABCD);
  EXPECT_TRUE(report.exact_match) << report.summary;
  EXPECT_TRUE(report.cycles_match) << report.summary;
}

INSTANTIATE_TEST_SUITE_P(
    AllMappersAllShapes, MapperEquivalence,
    ::testing::Combine(
        ::testing::Values("im2col", "smd", "sdk", "vw-sdk"),
        ::testing::Values(
            // Regimes: wide-open window search, AR-tiled, AC-tiled, both,
            // im2col-fallback, tiny, non-square image.
            EquivalenceCase{"open", 12, 3, 2, 4, 64, 32},
            EquivalenceCase{"ar_tiled", 8, 3, 20, 4, 64, 32},
            EquivalenceCase{"ac_tiled", 8, 3, 2, 40, 64, 32},
            EquivalenceCase{"both_tiled", 8, 3, 20, 40, 64, 32},
            EquivalenceCase{"fallback", 6, 3, 30, 30, 64, 32},
            EquivalenceCase{"tiny", 4, 3, 1, 1, 16, 8},
            EquivalenceCase{"k5", 9, 5, 3, 6, 128, 64},
            EquivalenceCase{"k1", 6, 1, 5, 7, 32, 16})),
    [](const auto& info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param).label;
      for (char& c : name) {
        if (c == '-') {
          c = '_';  // gtest parameter names must be alphanumeric
        }
      }
      return name;
    });

TEST(MapperEquivalence, NonSquareImageAndKernel) {
  ConvShape shape;
  shape.ifm_w = 11;
  shape.ifm_h = 7;
  shape.kernel_w = 5;
  shape.kernel_h = 3;
  shape.in_channels = 3;
  shape.out_channels = 4;
  shape.validate();
  const ArrayGeometry geometry{96, 48};
  for (const char* name : {"im2col", "vw-sdk", "smd"}) {
    const MappingDecision decision = make_mapper(name)->map(shape, geometry);
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, decision.cost);
    const VerificationReport report = verify_mapping_random(plan, 7);
    EXPECT_TRUE(report.exact_match) << name << ": " << report.summary;
  }
}

TEST(MapperEquivalence, StridedAndPaddedConv) {
  ConvShape shape = ConvShape::square(9, 3, 3, 5);
  shape.stride_w = 2;
  shape.stride_h = 2;
  shape.pad_w = 1;
  shape.pad_h = 1;
  const ArrayGeometry geometry{64, 32};
  for (const char* name : {"im2col", "vw-sdk"}) {
    const MappingDecision decision = make_mapper(name)->map(shape, geometry);
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, decision.cost);
    const VerificationReport report = verify_mapping_random(plan, 11);
    EXPECT_TRUE(report.exact_match) << name << ": " << report.summary;
    EXPECT_TRUE(report.cycles_match) << name << ": " << report.summary;
  }
}

TEST(MapperEquivalence, EverySpecificWindowShapeOnOneLayer) {
  // Execute EVERY feasible window of a small layer, not just the optimum:
  // the plan builder and executor must be correct for arbitrary windows.
  const ConvShape shape = ConvShape::square(7, 3, 3, 5);
  const ArrayGeometry geometry{72, 24};
  int tested = 0;
  for (Dim w = 3; w <= 7; ++w) {
    for (Dim h = 3; h <= 7; ++h) {
      const CycleCost cost = vw_cost(shape, geometry, {w, h});
      if (!cost.feasible) {
        continue;
      }
      const MappingPlan plan = (w == 3 && h == 3)
                                   ? build_im2col_plan(shape, geometry)
                                   : build_windowed_plan(shape, geometry,
                                                         cost);
      const VerificationReport report =
          verify_mapping_random(plan, 1000 + static_cast<unsigned>(w * 8 + h));
      EXPECT_TRUE(report.exact_match)
          << "window " << w << "x" << h << ": " << report.summary;
      ++tested;
    }
  }
  EXPECT_GE(tested, 15);
}

}  // namespace
}  // namespace vwsdk
