#include "sim/dispatch.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

MappingDecision conv5_decision() {
  // VGG-13 conv5, VW-SDK: N_PW = 1458, AR = 4, AC = 1 -> 4 tiles.
  return VwSdkMapper().map(ConvShape::square(56, 3, 128, 256), k512x512);
}

TEST(Dispatch, SingleArrayIsSerial) {
  const DispatchResult result = dispatch_layer(conv5_decision(), 1);
  EXPECT_EQ(result.makespan, 5832);
  EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
  EXPECT_DOUBLE_EQ(result.balance(), 1.0);
}

TEST(Dispatch, TilesSplitAcrossArrays) {
  // 4 tiles x 1458 cycles each on 2 arrays: 2 tiles per array.
  const DispatchResult result = dispatch_layer(conv5_decision(), 2);
  EXPECT_EQ(result.makespan, 2 * 1458);
  EXPECT_DOUBLE_EQ(result.speedup(), 2.0);
  EXPECT_DOUBLE_EQ(result.balance(), 1.0);
}

TEST(Dispatch, UnevenTileCountsLeaveImbalance) {
  // 4 tiles on 3 arrays: loads 2/1/1 -> makespan 2*1458, balance 0.5.
  const DispatchResult result = dispatch_layer(conv5_decision(), 3);
  EXPECT_EQ(result.makespan, 2 * 1458);
  EXPECT_DOUBLE_EQ(result.balance(), 0.5);
}

TEST(Dispatch, MoreArraysThanTilesSaturates) {
  const DispatchResult at4 = dispatch_layer(conv5_decision(), 4);
  const DispatchResult at16 = dispatch_layer(conv5_decision(), 16);
  EXPECT_EQ(at4.makespan, 1458);
  EXPECT_EQ(at16.makespan, 1458);  // static ownership cannot split a tile
  EXPECT_DOUBLE_EQ(at4.speedup(), 4.0);
}

TEST(Dispatch, ReplicationBreaksTheTileBarrier) {
  const DispatchResult result =
      dispatch_layer(conv5_decision(), 16, /*allow_replication=*/true);
  EXPECT_EQ(result.makespan, (5832 + 15) / 16);
  EXPECT_GT(result.speedup(), 15.9);
}

TEST(Dispatch, ReplicationNeverSlower) {
  const MappingDecision decision = conv5_decision();
  for (const Dim arrays : {1, 2, 3, 5, 8, 13}) {
    const DispatchResult owned = dispatch_layer(decision, arrays);
    const DispatchResult replicated =
        dispatch_layer(decision, arrays, true);
    EXPECT_LE(replicated.makespan, owned.makespan) << arrays << " arrays";
  }
}

TEST(Dispatch, BusyCyclesSumToSerial) {
  for (const Dim arrays : {1, 2, 3, 4, 7}) {
    const DispatchResult result = dispatch_layer(conv5_decision(), arrays);
    Cycles total = 0;
    for (const Cycles busy : result.per_array_busy) {
      total += busy;
    }
    EXPECT_EQ(total, result.serial_cycles) << arrays << " arrays";
  }
}

TEST(Dispatch, Validation) {
  EXPECT_THROW(dispatch_layer(conv5_decision(), 0), InvalidArgument);
  MappingDecision infeasible = conv5_decision();
  infeasible.cost.feasible = false;
  EXPECT_THROW(dispatch_layer(infeasible, 2), InvalidArgument);
}

TEST(Dispatch, ToStringSummarizes) {
  const std::string text = dispatch_layer(conv5_decision(), 2).to_string();
  EXPECT_NE(text.find("2 arrays"), std::string::npos);
  EXPECT_NE(text.find("speedup 2.00"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
