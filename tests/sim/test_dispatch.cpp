#include "sim/dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

MappingDecision conv5_decision() {
  // VGG-13 conv5, VW-SDK: N_PW = 1458, AR = 4, AC = 1 -> 4 tiles.
  return VwSdkMapper().map(ConvShape::square(56, 3, 128, 256), k512x512);
}

TEST(Dispatch, SingleArrayIsSerial) {
  const DispatchResult result = dispatch_layer(conv5_decision(), 1);
  EXPECT_EQ(result.makespan, 5832);
  EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
  EXPECT_DOUBLE_EQ(result.balance(), 1.0);
}

TEST(Dispatch, TilesSplitAcrossArrays) {
  // 4 tiles x 1458 cycles each on 2 arrays: 2 tiles per array.
  const DispatchResult result = dispatch_layer(conv5_decision(), 2);
  EXPECT_EQ(result.makespan, 2 * 1458);
  EXPECT_DOUBLE_EQ(result.speedup(), 2.0);
  EXPECT_DOUBLE_EQ(result.balance(), 1.0);
}

TEST(Dispatch, UnevenTileCountsLeaveImbalance) {
  // 4 tiles on 3 arrays: loads 2/1/1 -> makespan 2*1458, balance 0.5.
  const DispatchResult result = dispatch_layer(conv5_decision(), 3);
  EXPECT_EQ(result.makespan, 2 * 1458);
  EXPECT_DOUBLE_EQ(result.balance(), 0.5);
}

TEST(Dispatch, MoreArraysThanTilesSaturates) {
  const DispatchResult at4 = dispatch_layer(conv5_decision(), 4);
  const DispatchResult at16 = dispatch_layer(conv5_decision(), 16);
  EXPECT_EQ(at4.makespan, 1458);
  EXPECT_EQ(at16.makespan, 1458);  // static ownership cannot split a tile
  EXPECT_DOUBLE_EQ(at4.speedup(), 4.0);
}

TEST(Dispatch, ReplicationBreaksTheTileBarrier) {
  const DispatchResult result =
      dispatch_layer(conv5_decision(), 16, /*allow_replication=*/true);
  EXPECT_EQ(result.makespan, (5832 + 15) / 16);
  EXPECT_GT(result.speedup(), 15.9);
}

TEST(Dispatch, ReplicationNeverSlower) {
  const MappingDecision decision = conv5_decision();
  for (const Dim arrays : {1, 2, 3, 5, 8, 13}) {
    const DispatchResult owned = dispatch_layer(decision, arrays);
    const DispatchResult replicated =
        dispatch_layer(decision, arrays, true);
    EXPECT_LE(replicated.makespan, owned.makespan) << arrays << " arrays";
  }
}

TEST(Dispatch, BusyCyclesSumToSerial) {
  for (const Dim arrays : {1, 2, 3, 4, 7}) {
    const DispatchResult result = dispatch_layer(conv5_decision(), arrays);
    Cycles total = 0;
    for (const Cycles busy : result.per_array_busy) {
      total += busy;
    }
    EXPECT_EQ(total, result.serial_cycles) << arrays << " arrays";
  }
}

/// A hand-built decision whose serial total does NOT divide evenly over
/// its tiles (SMD-style window chunking); real windowed costs always
/// divide, so this exercises the remainder path directly.
MappingDecision uneven_decision(Cycles total, Cycles ar, Cycles ac) {
  MappingDecision decision;
  decision.cost.feasible = true;
  decision.cost.total = total;
  decision.cost.ar_cycles = ar;
  decision.cost.ac_cycles = ac;
  return decision;
}

TEST(Dispatch, RemainderSpreadsOverLeadingTiles) {
  // 10 cycles over 3 tiles: per-tile loads 4/3/3, never 3/3/3 (which
  // would under-report the makespan by truncation).
  const DispatchResult result = dispatch_layer(uneven_decision(10, 3, 1), 3);
  EXPECT_EQ(result.makespan, 4);
  ASSERT_EQ(result.per_array_busy.size(), 3u);
  EXPECT_EQ(result.per_array_busy[0], 4);
  EXPECT_EQ(result.per_array_busy[1], 3);
  EXPECT_EQ(result.per_array_busy[2], 3);
}

TEST(Dispatch, RemainderBusyCyclesStillSumToSerial) {
  for (const Dim arrays : {1, 2, 3, 5}) {
    const DispatchResult result =
        dispatch_layer(uneven_decision(11, 3, 1), arrays);
    Cycles sum = 0;
    for (const Cycles busy : result.per_array_busy) {
      sum += busy;
    }
    EXPECT_EQ(sum, 11) << arrays << " arrays";
    EXPECT_GE(result.makespan, ceil_div(11, std::min<Count>(arrays, 3)))
        << arrays << " arrays";
  }
}

TEST(Dispatch, GroupedLayerScalesTilesAndSerial) {
  // VGG-13 conv5's mapping treated as one group of a G = 4 layer:
  // 4 x 4 tiles and 4 x 5832 serial cycles.
  const MappingDecision decision = conv5_decision();
  const DispatchResult grouped =
      dispatch_layer(decision, 16, /*allow_replication=*/false,
                     /*groups=*/4);
  EXPECT_EQ(grouped.serial_cycles, 4 * 5832);
  // 16 tiles on 16 arrays: one tile each, makespan = N_PW.
  EXPECT_EQ(grouped.makespan, 1458);
  const DispatchResult replicated =
      dispatch_layer(decision, 16, /*allow_replication=*/true,
                     /*groups=*/4);
  EXPECT_EQ(replicated.makespan, ceil_div(4 * 5832, 16));
}

TEST(Dispatch, ToStringIsTotalOnEmptySchedule) {
  const DispatchResult empty{};
  EXPECT_NE(empty.to_string().find("empty schedule"), std::string::npos);
  EXPECT_THROW(empty.speedup(), Error);  // speedup itself still refuses
}

TEST(Dispatch, Validation) {
  EXPECT_THROW(dispatch_layer(conv5_decision(), 0), InvalidArgument);
  MappingDecision infeasible = conv5_decision();
  infeasible.cost.feasible = false;
  EXPECT_THROW(dispatch_layer(infeasible, 2), InvalidArgument);
}

TEST(Dispatch, ToStringSummarizes) {
  const std::string text = dispatch_layer(conv5_decision(), 2).to_string();
  EXPECT_NE(text.find("2 arrays"), std::string::npos);
  EXPECT_NE(text.find("speedup 2.00"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
