#!/usr/bin/env python3
"""End-to-end smoke test of the `vwsdk` CLI (ctest `cli.smoke`, label
"cli").  Everything asserted here is machine-independent:

* every subcommand runs and honours the documented exit codes
  (0 success, 1 runtime error, 2 usage error);
* `map` / `compare` on a zoo *name* and on the spec file exported by
  `vwsdk zoo --export` produce byte-identical output (the spec
  round-trip, in both JSON and CSV spec formats);
* the paper's Table-I totals on the 512x512 array are reproduced;
* `sweep` runs a non-zoo spec file (grouped layers included) through the
  cross-product and emits well-formed CSV and JSON;
* `chip` plans a pipelined chip allocation end to end (single chip,
  multi-chip sharding when the demand exceeds one chip, the `--network`
  alias, objective-aware allocation, and the batch throughput model);
* `--objective energy` / `edp` run end to end (and energy provably
  changes a VGG-13 window choice vs. the default cycles search);
* `verify` functionally verifies mapped layers on the crossbar
  simulator, with byte-identical reports under the `scalar` and `gemm`
  execution backends and usage errors for unknown `--ref-backend`s;
* `mappers` lists the registry, and unknown mappers/objectives are
  usage errors naming the known sets.

With `--serve` the script instead drives the `vwsdk serve` daemon
(ctest `cli.serve_smoke`): a scripted NDJSON session covering every op
whose `result` payloads must be byte-identical to the one-shot CLI's
`--format json` output, cache hits accumulating across requests,
admission-control rejections under `--max-inflight 1 --max-queue 1`
that leave the daemon alive, a graceful SIGTERM drain exiting 0, and
the same session over a `--socket` Unix domain socket.

With `--traffic` the script drives the traffic simulator (ctest
`cli.traffic_smoke`): seeded runs are byte-identical and conservative
(arrivals == completions + in-flight + rejected), a CSV trace and its
JSON equivalent replay to byte-identical reports, and the `--slo-p99`
capacity planner honours the exit-code contract (0 with a minimality
proof, 1 for an unmeetable SLO, 2 for usage errors).
"""

import argparse
import csv
import io
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

FAILURES: list[str] = []


def check(condition: bool, label: str) -> None:
    print(f"  [{'OK' if condition else 'FAIL'}] {label}")
    if not condition:
        FAILURES.append(label)


def hermetic_env() -> dict:
    # Hermetic: the sanitizer CI job exports VWSDK_REF_BACKEND to
    # matrix the whole suite over backends, but this smoke asserts
    # the CLI's own documented defaults, so the inherited selection
    # must not leak in (the flag is exercised explicitly below).
    return {k: v for k, v in os.environ.items()
            if k != "VWSDK_REF_BACKEND"}


class Cli:
    def __init__(self, binary: str):
        self.binary = binary

    def run(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [self.binary, *args], capture_output=True, text=True,
            timeout=300, env=hermetic_env(),
        )

    def spawn_serve(self, *args: str) -> subprocess.Popen:
        return subprocess.Popen(
            [self.binary, "serve", *args], stdin=subprocess.PIPE,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=hermetic_env(),
        )


def by_id(ndjson: str) -> dict:
    """Parse daemon output into {id: (doc, raw_line)}.  Responses are
    asynchronous (workers finish in any order), so every assertion
    matches by the echoed id, never by line order."""
    responses = {}
    for line in ndjson.splitlines():
        if line.strip():
            doc = json.loads(line)
            responses[doc["id"]] = (doc, line)
    return responses


def ok_envelope(request_id: str, op: str, payload: str) -> str:
    """The exact response line serve must emit for a one-shot payload."""
    return (f'{{"v":1,"id":"{request_id}","op":"{op}","ok":true,'
            f'"result":{payload}}}')


def serve_smoke(cli: Cli, tmp: Path) -> None:
    # --- serve usage errors ---------------------------------------------
    check(cli.run("serve", "--help").returncode == 0, "serve --help exits 0")
    check(cli.run("serve", "--bogus").returncode == 2,
          "serve with an unknown flag exits 2")
    check(cli.run("serve", "--max-inflight", "0").returncode == 2,
          "serve --max-inflight 0 exits 2")
    check(cli.run("serve", "--max-queue", "-1").returncode == 2,
          "serve --max-queue -1 exits 2")

    # --- the scripted session: every op + hostile lines -----------------
    # --max-inflight 1 makes execution order deterministic (FIFO through
    # one worker), so the stats snapshot sees both maps' cache traffic.
    session = [
        '{"v":1,"id":"p1","op":"ping"}',
        '{"v":1,"id":"m1","op":"map","net":"lenet5"}',
        '{"v":1,"id":"m2","op":"map","net":"lenet5"}',
        '{"v":1,"id":"c1","op":"compare","net":"lenet5"}',
        '{"v":1,"id":"h1","op":"chip","net":"lenet5","arrays":4}',
        '{"v":1,"id":"f1","op":"traffic","net":"lenet5","arrays":4,'
        '"rate":50,"duration":1000000}',
        '{"v":1,"id":"v1","op":"verify","net":"lenet5"}',
        '{"v":1,"id":"r1","op":"mappers"}',
        '{"v":1,"id":"s1","op":"stats"}',
        "this is not json",
        '{"v":1,"id":"u1","op":"frob"}',
        '{"v":1,"id":"e1","op":"map","net":"no-such-model"}',
        '{"v":1,"id":"d1","op":"shutdown"}',
    ]
    daemon = cli.spawn_serve("--max-inflight", "1")
    out, err = daemon.communicate("\n".join(session) + "\n", timeout=300)
    check(daemon.returncode == 0, "serve session drains and exits 0")
    responses = by_id(out)
    check(len(responses) == len(session),
          f"one response per request line (got {len(responses)})")

    # Result payloads are the one-shot CLI's --format json output,
    # byte for byte -- the two front ends share one ServiceApi.
    oneshot = {
        "m1": ("map", cli.run("map", "--net", "lenet5", "--format", "json")),
        "c1": ("compare",
               cli.run("compare", "--net", "lenet5", "--format", "json")),
        "h1": ("chip", cli.run("chip", "--net", "lenet5", "--arrays", "4",
                               "--format", "json")),
        "f1": ("traffic",
               cli.run("traffic", "--net", "lenet5", "--arrays", "4",
                       "--rate", "50", "--duration", "1000000",
                       "--format", "json")),
        "v1": ("verify",
               cli.run("verify", "--net", "lenet5", "--format", "json")),
        "r1": ("mappers", cli.run("mappers", "--format", "json")),
    }
    for request_id, (op, run) in oneshot.items():
        expected = ok_envelope(request_id, op, run.stdout.strip())
        got = responses.get(request_id, (None, ""))[1]
        check(
            run.returncode == 0 and got == expected,
            f"serve {op} response is byte-identical to the one-shot CLI",
        )
    check(
        responses["p1"][1]
        == ok_envelope("p1", "ping", '{"pong":true,"delay_ms":0}'),
        "ping answers pong",
    )
    check(
        responses["d1"][1]
        == ok_envelope("d1", "shutdown", '{"stopping":true}'),
        "shutdown acknowledges before draining",
    )

    # The shared cache: m2 repeats m1, so by the time the (serialized)
    # stats request runs the daemon has recorded hits.
    stats = responses["s1"][0]
    check(
        stats["ok"] and stats["result"]["cache"]["hits"] >= 2
        and stats["result"]["cache"]["misses"] >= 2
        and stats["result"]["threads"] >= 1,
        "stats reports cache hits accumulated across requests",
    )

    # Hostile lines get per-request error responses, never process
    # death: unparseable input (id null), an unknown op, and a clean
    # request whose execution fails.
    for request_id, code in ((None, "bad_request"), ("u1", "unknown_op"),
                             ("e1", "not_found")):
        doc = responses.get(request_id, ({}, ""))[0]
        check(
            doc and not doc["ok"] and doc["error"]["code"] == code
            and doc["error"]["message"],
            f"hostile line answers a structured {code} error",
        )

    # --- admission control: bounded, rejecting, and recoverable ---------
    daemon = cli.spawn_serve("--max-inflight", "1", "--max-queue", "1")
    # A slow ping occupies the only worker, the second fills the only
    # queue slot, so the third must be refused immediately.
    for line in ('{"v":1,"id":"a","op":"ping","delay_ms":1500}',
                 '{"v":1,"id":"b","op":"ping"}',
                 '{"v":1,"id":"c","op":"ping"}'):
        daemon.stdin.write(line + "\n")
    daemon.stdin.flush()
    rejected = json.loads(daemon.stdout.readline())
    check(
        rejected["id"] == "c" and not rejected["ok"]
        and rejected["error"]["code"] == "overloaded",
        "request beyond --max-queue is rejected as overloaded",
    )
    # The daemon stays alive: both admitted pings still answer, and once
    # capacity frees a new request is admitted again.
    settled = by_id(daemon.stdout.readline() + daemon.stdout.readline())
    check(
        settled["a"][0]["ok"] and settled["b"][0]["ok"],
        "admitted requests complete despite the rejection",
    )
    daemon.stdin.write('{"v":1,"id":"d","op":"ping"}\n'
                       '{"v":1,"id":"z","op":"shutdown"}\n')
    out, err = daemon.communicate(timeout=300)
    responses = by_id(out)
    check(
        daemon.returncode == 0 and responses["d"][0]["ok"],
        "the daemon recovers and admits again after overload",
    )

    # --- graceful drain on SIGTERM --------------------------------------
    daemon = cli.spawn_serve()
    daemon.stdin.write('{"v":1,"id":"t1","op":"ping","delay_ms":400}\n')
    daemon.stdin.flush()
    time.sleep(0.25)  # let the reader admit the ping before the signal
    daemon.send_signal(signal.SIGTERM)
    out, err = daemon.communicate(timeout=300)
    responses = by_id(out)
    check(
        daemon.returncode == 0 and responses["t1"][0]["result"]["pong"],
        "SIGTERM drains the in-flight request and exits 0",
    )

    # --- the same protocol over a Unix domain socket --------------------
    sock_path = tmp / "serve.sock"
    daemon = cli.spawn_serve("--socket", str(sock_path))
    deadline = time.monotonic() + 60
    while not sock_path.exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(str(sock_path))
    client.sendall(b'{"v":1,"id":"s-map","op":"map","net":"lenet5"}\n'
                   b'{"v":1,"id":"s-end","op":"shutdown"}\n')
    received = b""
    while chunk := client.recv(65536):
        received += chunk
    client.close()
    out, err = daemon.communicate(timeout=300)
    responses = by_id(received.decode())
    check(
        daemon.returncode == 0
        and responses["s-map"][1]
        == ok_envelope("s-map", "map",
                       oneshot["m1"][1].stdout.strip())
        and responses["s-end"][0]["result"]["stopping"],
        "the socket session matches stdin byte for byte and drains",
    )
    check(not sock_path.exists(), "the socket file is unlinked on exit")


def traffic_smoke(cli: Cli, tmp: Path) -> None:
    check(cli.run("traffic", "--help").returncode == 0,
          "traffic --help exits 0")

    # --- seeded Poisson: deterministic and conservative -----------------
    poisson_args = ("traffic", "--net", "vgg13", "--arrays", "64",
                    "--rate", "20", "--duration", "10000000",
                    "--format", "json")
    first = cli.run(*poisson_args)
    check(first.returncode == 0, "traffic (poisson, json) exits 0")
    doc = json.loads(first.stdout)
    check(
        doc["source"] == "poisson" and doc["seed"] == 42
        and doc["arrivals"] > 0,
        "traffic json carries the source, default seed, and arrivals",
    )
    net = doc["networks"][0]
    check(
        net["arrivals"]
        == net["completions"] + net["in_flight"] + net["rejected"],
        "every arrival is completed, in flight, or rejected",
    )
    check(
        net["latency"]["min"] >= net["fill_latency"]
        and net["latency"]["p50"] <= net["latency"]["p99"]
        <= net["latency"]["max"],
        "latency spectrum is ordered and bounded below by the fill",
    )
    second = cli.run(*poisson_args)
    check(second.stdout == first.stdout,
          "the same seed replays a byte-identical report")
    reseeded = cli.run(*poisson_args, "--seed", "7")
    check(
        reseeded.returncode == 0 and reseeded.stdout != first.stdout,
        "a different --seed yields a different report",
    )
    table = cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                    "--rate", "20")
    check(
        table.returncode == 0 and "sustained" in table.stdout
        and "p99" in table.stdout,
        "traffic table reports throughput and tail latency",
    )
    csv_run = cli.run(*poisson_args[:-1], "csv")
    csv_rows = list(csv.DictReader(io.StringIO(csv_run.stdout)))
    check(
        csv_run.returncode == 0 and len(csv_rows) >= 1
        and csv_rows[0]["network"] == "VGG-13"
        and int(csv_rows[0]["arrivals"]) == net["arrivals"],
        "traffic csv carries one row per chip matching the json totals",
    )

    # --- trace round trip: CSV and JSON replay identically --------------
    arrivals = [(0, ""), (5000, "VGG-13"), (40000, ""), (40000, "")]
    trace_csv = tmp / "arrivals.csv"
    trace_csv.write_text("time,net\n" + "".join(
        f"{t},{n}\n" for t, n in arrivals))
    trace_json = tmp / "arrivals.json"
    trace_json.write_text(json.dumps({"arrivals": [
        {"time": t, **({"net": n} if n else {})} for t, n in arrivals]}))
    via_csv = cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                      "--trace", str(trace_csv), "--format", "json")
    via_json = cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                       "--trace", str(trace_json), "--format", "json")
    check(
        via_csv.returncode == 0 and via_csv.stdout == via_json.stdout,
        "CSV and JSON traces replay to byte-identical reports",
    )
    traced = json.loads(via_csv.stdout)
    check(
        traced["source"] == "trace"
        and traced["networks"][0]["arrivals"] == len(arrivals)
        and traced["networks"][0]["completions"] == len(arrivals),
        "the trace replays every arrival to completion",
    )

    # --- capacity planning: the --slo-p99 exit-code contract ------------
    capacity = cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                       "--rate", "900", "--slo-p99", "20000",
                       "--format", "json")
    check(capacity.returncode == 0, "a meetable --slo-p99 exits 0")
    answer = json.loads(capacity.stdout)
    check(
        answer["meets_slo"] and answer["p99"] <= 20000
        and answer["replicas"] >= 1
        and answer["lower"]["replicas"] == answer["replicas"] - 1
        and answer["lower"]["p99"] > 20000,
        "the capacity answer is minimal, with the failing count as proof",
    )
    impossible = cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                         "--rate", "20", "--slo-p99", "1000")
    check(
        impossible.returncode == 1 and "SLO" in impossible.stderr,
        "an SLO below the fill latency exits 1 naming the reason",
    )

    # --- usage errors ---------------------------------------------------
    check(
        cli.run("traffic", "--net", "vgg13", "--arrays", "64").returncode
        == 2,
        "traffic without a rate or trace exits 2",
    )
    check(
        cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                "--rate", "fast").returncode == 2,
        "a non-numeric --rate exits 2",
    )
    check(
        cli.run("traffic", "--net", "vgg13", "--arrays", "64", "--rate",
                "10", "--trace", str(trace_csv)).returncode == 2,
        "--rate and --trace together exit 2",
    )
    check(
        cli.run("traffic", "--net", "vgg13", "--arrays", "64",
                "--trace", str(tmp / "missing.csv")).returncode == 2,
        "a missing trace file exits 2",
    )
    check(
        cli.run("traffic", "--net", "vgg13").returncode == 2,
        "traffic without --arrays exits 2",
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to the vwsdk binary")
    parser.add_argument("--serve", action="store_true",
                        help="drive the serve daemon instead of the "
                             "one-shot subcommands")
    parser.add_argument("--traffic", action="store_true",
                        help="drive the traffic simulator instead of the "
                             "one-shot subcommands")
    args = parser.parse_args()
    cli = Cli(args.cli)
    tmp = Path(tempfile.mkdtemp(prefix="vwsdk_cli_smoke_"))

    if args.serve:
        serve_smoke(cli, tmp)
        print(f"\ncli_smoke --serve: {len(FAILURES)} failure(s)")
        return 1 if FAILURES else 0

    if args.traffic:
        traffic_smoke(cli, tmp)
        print(f"\ncli_smoke --traffic: {len(FAILURES)} failure(s)")
        return 1 if FAILURES else 0

    # --- exit codes -----------------------------------------------------
    check(cli.run("--help").returncode == 0, "--help exits 0")
    check(cli.run("--version").returncode == 0, "--version exits 0")
    no_command = cli.run()
    check(
        no_command.returncode == 2 and no_command.stdout == ""
        and "Usage" in no_command.stderr,
        "no command exits 2 with help on stderr, stdout clean",
    )
    check(cli.run("frobnicate").returncode == 2, "unknown command exits 2")
    check(
        cli.run("map", "--net", "vgg16", "--bogus").returncode == 2,
        "unknown flag exits 2",
    )
    check(
        cli.run("map", "--net", "no-such-model").returncode == 2,
        "unresolvable --net exits 2",
    )
    for sub in ("map", "compare", "sweep", "chip", "traffic", "verify",
                "mappers", "zoo", "serve"):
        check(cli.run(sub, "--help").returncode == 0, f"{sub} --help exits 0")

    # --- mapper registry listing ----------------------------------------
    mappers_out = cli.run("mappers")
    check(mappers_out.returncode == 0, "mappers exits 0")
    check(
        all(name in mappers_out.stdout
            for name in ("im2col", "vw-sdk", "exhaustive", "objective-aware")),
        "mappers lists the registered algorithms and capabilities",
    )
    unknown_mapper = cli.run("map", "--net", "vgg13", "--mapper", "frob")
    check(
        unknown_mapper.returncode == 2 and "known:" in unknown_mapper.stderr
        and "vw-sdk" in unknown_mapper.stderr,
        "unknown --mapper exits 2 listing the registry names",
    )

    # --- zoo listing ----------------------------------------------------
    zoo = cli.run("zoo")
    check(zoo.returncode == 0, "zoo exits 0")
    check("vgg16" in zoo.stdout and "resnet18" in zoo.stdout,
          "zoo lists the models")

    # --- paper Table-I totals via the CLI -------------------------------
    for net, mapper, expected in (
        ("vgg13", "sdk", 114697),
        ("vgg13", "vw-sdk", 77102),
        ("resnet18", "sdk", 7240),
        ("resnet18", "vw-sdk", 4294),
    ):
        out = cli.run("map", "--net", net, "--mapper", mapper,
                      "--array", "512x512", "--format", "json")
        total = json.loads(out.stdout)["total_cycles"]
        check(
            out.returncode == 0 and total == expected,
            f"map {net}/{mapper} total {total} == paper {expected}",
        )

    with_stats = cli.run("map", "--net", "lenet5", "--stats")
    check(
        with_stats.returncode == 0 and "cache" in with_stats.stderr
        and "cache" not in with_stats.stdout,
        "map --stats reports the cache on stderr only",
    )

    # --- search objectives ----------------------------------------------
    by_cycles = cli.run("map", "--net", "vgg13", "--format", "json")
    by_energy = cli.run("map", "--net", "vgg13", "--objective", "energy",
                        "--format", "json")
    check(by_cycles.returncode == 0, "map (default objective) exits 0")
    check(by_energy.returncode == 0, "map --objective energy exits 0")
    if by_cycles.returncode != 0 or by_energy.returncode != 0:
        print(f"\ncli_smoke: {len(FAILURES)} failure(s)")
        return 1
    cycles_doc = json.loads(by_cycles.stdout)
    energy_doc = json.loads(by_energy.stdout)
    check(
        cycles_doc["objective"] == "cycles"
        and energy_doc["objective"] == "energy",
        "result JSON carries the objective",
    )
    windows = {
        doc["objective"]: [l["decision"]["window"] for l in doc["layers"]]
        for doc in (cycles_doc, energy_doc)
    }
    check(
        windows["cycles"] != windows["energy"],
        "energy objective picks different VGG-13 windows than cycles",
    )
    edp = cli.run("map", "--net", "vgg13", "--objective", "edp",
                  "--format", "json")
    check(
        edp.returncode == 0 and json.loads(edp.stdout)["total_score"] > 0,
        "map --objective edp exits 0 with a positive score",
    )
    check(
        cli.run("compare", "--net", "resnet18", "--objective", "energy",
                "--format", "csv").returncode == 0,
        "compare --objective energy exits 0",
    )
    bad_objective = cli.run("map", "--net", "vgg13", "--objective", "frob")
    check(
        bad_objective.returncode == 2 and "known:" in bad_objective.stderr,
        "unknown --objective exits 2 listing the known objectives",
    )

    # --- spec round trip: zoo name vs exported spec file ----------------
    for spec_format in ("json", "csv"):
        spec_path = tmp / f"vgg16.{spec_format}"
        export = cli.run("zoo", "--export", "vgg16",
                         "--format", spec_format, "--out", str(spec_path))
        check(export.returncode == 0, f"zoo --export vgg16 ({spec_format})")
        by_name = cli.run("map", "--net", "vgg16", "--format", "json")
        by_spec = cli.run("map", "--net", str(spec_path), "--format", "json")
        check(
            by_name.returncode == 0
            and by_name.stdout == by_spec.stdout
            and by_name.stdout.strip(),
            f"map via {spec_format} spec is byte-identical to zoo name",
        )
    by_name = cli.run("compare", "--net", "vgg16", "--format", "csv")
    by_spec = cli.run("compare", "--net", str(tmp / "vgg16.json"),
                      "--format", "csv")
    check(
        by_name.returncode == 0 and by_name.stdout == by_spec.stdout,
        "compare via spec is byte-identical to zoo name",
    )

    # --- sweep over a custom (non-zoo) spec file ------------------------
    custom = tmp / "custom.json"
    custom.write_text(json.dumps({
        "name": "smoke-net",
        "array": "256x256",
        "layers": [
            {"name": "c1", "image": 32, "kernel": 3, "ic": 8, "oc": 16},
            {"name": "dw", "image": 30, "kernel": 3, "ic": 16, "oc": 16,
             "groups": 16},
            {"name": "pw", "image": 28, "kernel": 1, "ic": 16, "oc": 32},
        ],
    }))
    mappers = ["im2col", "vw-sdk"]
    sweep_csv = cli.run("sweep", "--nets", f"{custom},vgg13",
                        "--arrays", "128x128,256x256",
                        "--mappers", ",".join(mappers), "--format", "csv")
    check(sweep_csv.returncode == 0, "sweep (csv) exits 0")
    rows = list(csv.DictReader(io.StringIO(sweep_csv.stdout)))
    expected_rows = len(mappers) * 2 * (3 + 10)  # mappers x arrays x layers
    check(len(rows) == expected_rows,
          f"sweep csv has {expected_rows} rows (got {len(rows)})")
    check(
        all(float(r["speedup_vs_baseline"]) > 0 for r in rows),
        "sweep csv speedups parse as positive floats",
    )
    check(
        any(r["network"] == "smoke-net" and r["groups"] == "16"
            for r in rows),
        "sweep csv carries the grouped layer",
    )

    sweep_json = cli.run("sweep", "--nets", str(custom),
                         "--arrays", "64x64,128x128",
                         "--mappers", ",".join(mappers),
                         "--format", "json", "--stats")
    check(sweep_json.returncode == 0, "sweep (json) exits 0")
    points = json.loads(sweep_json.stdout)
    check(
        len(points) == 2
        and all(len(p["results"]) == len(mappers) for p in points),
        "sweep json has one comparison per array point",
    )
    check("cache" in sweep_json.stderr, "sweep --stats reports the cache")

    # --- chip: the pipeline planner end to end --------------------------
    chip = cli.run("chip", "--net", "resnet18", "--arrays", "64",
                   "--batch", "16", "--format", "json")
    check(chip.returncode == 0, "chip (single chip, json) exits 0")
    plan = json.loads(chip.stdout)
    check(
        plan["feasible"] and len(plan["chips"]) == 1
        and plan["interval"] > 0 and plan["speedup"] > 1.0,
        "chip json carries a feasible single-chip plan with speedup",
    )
    check(
        plan["batch"] == 16
        and plan["batch_cycles"]
        == plan["fill_latency"] + 15 * plan["interval"],
        "chip batch cycles follow fill + (B-1) x interval",
    )
    by_alias = cli.run("chip", "--network", "resnet18", "--arrays", "64",
                       "--batch", "16", "--format", "json")
    check(
        by_alias.returncode == 0 and by_alias.stdout == chip.stdout,
        "--network is an exact alias for --net",
    )

    # Demand (23 arrays for ResNet-18 vw-sdk) > 12-array chips: the
    # planner shards instead of reporting a bare infeasible.
    sharded = cli.run("chip", "--net", "resnet18", "--arrays", "12",
                      "--format", "json")
    check(sharded.returncode == 0, "chip (multi-chip) exits 0")
    sharded_plan = json.loads(sharded.stdout)
    check(
        sharded_plan["feasible"] and len(sharded_plan["chips"]) > 1
        and sharded_plan["interval"]
        == max(c["interval"] for c in sharded_plan["chips"]),
        "demand > one chip shards into a valid multi-chip plan",
    )
    check(
        all(sum(l["tiles"] for l in c["layers"]) <= 12
            for c in sharded_plan["chips"]),
        "every chip's resident demand fits its 12-array budget",
    )

    for objective in ("cycles", "energy", "edp"):
        run = cli.run("chip", "--net", "vgg13", "--arrays", "64",
                      "--objective", objective, "--format", "json")
        ok = run.returncode == 0
        if ok:
            doc = json.loads(run.stdout)
            ok = doc["objective"] == objective and doc["feasible"]
        check(ok, f"chip --objective {objective} exits 0 with the objective")

    chip_csv = cli.run("chip", "--net", "vgg13", "--arrays", "64",
                       "--format", "csv")
    check(chip_csv.returncode == 0, "chip (csv) exits 0")
    chip_rows = list(csv.DictReader(io.StringIO(chip_csv.stdout)))
    check(
        len(chip_rows) == 10
        and all(int(r["arrays"]) >= int(r["tiles"]) for r in chip_rows)
        and len({r["interval"] for r in chip_rows}) == 1,
        "chip csv has one row per layer with arrays >= tiles",
    )
    chip_table = cli.run("chip", "--net", "resnet18", "--arrays", "64")
    check(
        chip_table.returncode == 0 and "interval" in chip_table.stdout
        and "speedup" in chip_table.stdout,
        "chip table reports interval and speedup",
    )

    # A grouped (depthwise) spec flows through the planner: its resident
    # demand counts G copies of the per-group tiles.
    grouped_chip = cli.run("chip", "--net", str(custom), "--arrays", "32",
                           "--format", "json")
    check(grouped_chip.returncode == 0, "chip on a grouped spec exits 0")
    grouped_plan = json.loads(grouped_chip.stdout)
    dw = [l for c in grouped_plan["chips"] for l in c["layers"]
          if l["name"] == "dw"]
    check(
        len(dw) == 1 and dw[0]["groups"] == 16
        and dw[0]["tiles"] % 16 == 0,
        "grouped layer keeps G x per-group tiles resident",
    )

    check(
        cli.run("chip", "--net", "resnet18").returncode == 2,
        "chip without --arrays exits 2",
    )
    overflow = cli.run("chip", "--net", "resnet18",
                       "--arrays", "4294967360")  # 2^32 + 64
    check(
        overflow.returncode == 2 and "--arrays" in overflow.stderr,
        "an --arrays value beyond Dim exits 2 instead of wrapping",
    )
    capped = cli.run("chip", "--net", "resnet18", "--arrays", "12",
                     "--chips", "1")
    check(
        capped.returncode == 1 and "chip" in capped.stderr,
        "an impossible chip budget exits 1 naming the reason",
    )

    # --- verify: functional verification via the execution backends ----
    verify = cli.run("verify", "--net", "lenet5", "--array", "64x64")
    check(
        verify.returncode == 0
        and "all layers verified EXACT" in verify.stdout
        and "backend: gemm" in verify.stdout,
        "verify lenet5 exits 0 reporting EXACT under the default backend",
    )
    by_scalar = cli.run("verify", "--net", "lenet5", "--array", "64x64",
                        "--ref-backend", "scalar")
    by_gemm = cli.run("verify", "--net", "lenet5", "--array", "64x64",
                      "--ref-backend", "gemm")
    check(
        by_scalar.returncode == 0 and by_gemm.returncode == 0
        and by_scalar.stdout.replace("backend: scalar", "backend: gemm")
        == by_gemm.stdout,
        "verify reports are identical under the scalar and gemm backends",
    )
    grouped_verify = cli.run("verify", "--net", str(custom),
                             "--array", "128x128")
    check(
        grouped_verify.returncode == 0
        and "all layers verified EXACT" in grouped_verify.stdout,
        "verify handles a grouped (depthwise) spec",
    )
    bad_backend = cli.run("verify", "--net", "lenet5",
                          "--ref-backend", "frob")
    check(
        bad_backend.returncode == 2 and "known:" in bad_backend.stderr
        and "gemm" in bad_backend.stderr,
        "unknown --ref-backend exits 2 listing the registered backends",
    )

    # --- malformed specs fail cleanly -----------------------------------
    bad = tmp / "bad.json"
    bad.write_text('{"name": "x", "layers": [{"image": 8}]}')
    run = cli.run("map", "--net", str(bad))
    check(
        run.returncode == 2 and "kernel" in run.stderr,
        "spec missing required keys exits 2 naming the key",
    )
    garbage = tmp / "garbage.json"
    garbage.write_text("{not json")
    check(
        cli.run("map", "--net", str(garbage)).returncode == 2,
        "unparseable spec exits 2",
    )
    deep = tmp / "deep.json"
    deep.write_text("[" * 100000 + "]" * 100000)
    check(
        cli.run("map", "--net", str(deep)).returncode == 2,
        "deeply nested spec exits 2 (no stack overflow)",
    )

    # Usage errors fire before --out is opened: no partial file.
    unwritten = tmp / "must_not_exist.txt"
    run = cli.run("compare", "--net", "lenet5", "--mappers", "vw-sdk",
                  "--out", str(unwritten))
    check(
        run.returncode == 2 and not unwritten.exists(),
        "early usage error leaves no partial --out file",
    )

    # --- --out writes files ---------------------------------------------
    out_path = tmp / "result.csv"
    run = cli.run("map", "--net", "resnet18", "--format", "csv",
                  "--out", str(out_path))
    check(
        run.returncode == 0 and out_path.read_text().startswith("network,"),
        "--out writes the CSV file",
    )

    print(f"\ncli_smoke: {len(FAILURES)} failure(s)")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
