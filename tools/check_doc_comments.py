#!/usr/bin/env python3
"""Lint the Doxygen ///-comments of the public headers without needing
Doxygen installed (the real `docs` build runs in CI with
WARN_AS_ERROR; this linter catches the same mechanical mistakes locally
and is registered as the ctest `docs.comment_lint`, label "docs").

Checks, per src/**/*.h:
  1. the header carries a `/// @file <name>` comment whose name matches
     the actual filename;
  2. every `@param NAME` names a parameter that appears in the
     declaration following the comment block (catches renames);
  3. `@param` / `@return` / `@tparam` are not used in non-Doxygen (`//`)
     comments where Doxygen would silently drop them;
  4. no stray Doxygen block uses an unknown @command (typo guard over
     the small command vocabulary this codebase uses);
  5. no bare `<word>` token in comment text (Doxygen reads it as an
     unsupported HTML tag and warns; write `` `<word>` `` instead).
"""

import re
import sys
from pathlib import Path

KNOWN_COMMANDS = {
    "file", "param", "return", "returns", "tparam", "brief", "note",
    "warning", "see", "code", "endcode", "p", "a", "c", "ref",
}

FAILURES: list[str] = []


def fail(path: Path, line_number: int, message: str) -> None:
    FAILURES.append(f"{path}:{line_number}: {message}")


def declaration_after(lines: list[str], index: int) -> str:
    """The declaration text following a comment block: subsequent lines
    until a ';' or '{' terminator (comment lines skipped), flattened."""
    collected: list[str] = []
    for line in lines[index:index + 20]:
        stripped = line.strip()
        if stripped.startswith("///") or stripped.startswith("//"):
            continue
        collected.append(stripped)
        if ";" in stripped or "{" in stripped:
            break
    return " ".join(collected)


def check_header(path: Path) -> None:
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    file_tags = re.findall(r"///\s*@file\s+(\S+)", text)
    if not file_tags:
        fail(path, 1, "missing '/// @file' comment")
    elif file_tags[0] != path.name:
        fail(path, 1, f"@file says '{file_tags[0]}', file is '{path.name}'")

    for i, line in enumerate(lines):
        stripped = line.strip()
        is_doxygen = stripped.startswith("///")
        is_comment = stripped.startswith("//")
        for command in re.findall(r"[@\\](\w+)", stripped):
            if not is_comment:
                continue  # @ inside code (e.g. a string literal)
            if command in KNOWN_COMMANDS:
                if not is_doxygen and not stripped.startswith("//!"):
                    fail(path, i + 1,
                         f"'@{command}' in a plain '//' comment -- Doxygen "
                         "drops it; use '///'")
            elif is_doxygen and re.search(rf"^///\s*[@\\]{command}\b",
                                          stripped):
                fail(path, i + 1, f"unknown Doxygen command '@{command}'")

        if is_doxygen:
            # Comment text after ///, code spans removed: a bare <word>
            # would reach Doxygen's HTML-tag parser and warn.
            comment_text = re.sub(r"`[^`]*`", "", stripped.lstrip("/<"))
            html_like = re.search(r"<[A-Za-z_][\w:]*>", comment_text)
            if html_like:
                fail(path, i + 1,
                     f"bare '{html_like.group(0)}' reads as an HTML tag to "
                     "Doxygen; wrap it in backticks")

        match = re.search(r"///.*[@\\]param\s+(?:\[[^\]]*\]\s*)?(\w+)",
                          stripped)
        if match and not is_doxygen:
            continue
        if match:
            name = match.group(1)
            # Find the declaration this comment block ends at.
            j = i + 1
            while j < len(lines) and lines[j].strip().startswith("///"):
                j += 1
            declaration = declaration_after(lines, j)
            if not re.search(rf"\b{re.escape(name)}\b", declaration):
                fail(path, i + 1,
                     f"@param '{name}' does not match the declaration "
                     f"below: {declaration[:80]!r}")


def main() -> int:
    roots = [Path(arg) for arg in sys.argv[1:]] or [Path("src")]
    headers = sorted(h for root in roots for h in root.rglob("*.h"))
    if not headers:
        sys.exit(f"no headers found under {roots}")
    for header in headers:
        check_header(header)
    for failure in FAILURES:
        print(failure)
    print(f"check_doc_comments: {len(headers)} header(s), "
          f"{len(FAILURES)} problem(s)")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
