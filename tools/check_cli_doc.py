#!/usr/bin/env python3
"""Keep docs/CLI.md honest: the usage block between the
`<!-- vwsdk-help:begin -->` / `<!-- vwsdk-help:end -->` markers must be
byte-identical to the live output of `vwsdk --help`.

Registered as the ctest `cli.help_matches_doc` (label "cli").
"""

import argparse
import difflib
import re
import subprocess
import sys


def doc_help_block(doc_path: str) -> str:
    """The fenced code block between the help markers, fence lines stripped."""
    with open(doc_path, encoding="utf-8") as f:
        text = f.read()
    match = re.search(
        r"<!-- vwsdk-help:begin -->\n```text\n(.*?)```\n<!-- vwsdk-help:end -->",
        text,
        re.DOTALL,
    )
    if not match:
        sys.exit(
            f"{doc_path}: no '<!-- vwsdk-help:begin -->' ```text block found"
        )
    return match.group(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to the vwsdk binary")
    parser.add_argument("--doc", required=True, help="path to docs/CLI.md")
    args = parser.parse_args()

    run = subprocess.run(
        [args.cli, "--help"], capture_output=True, text=True, timeout=60
    )
    if run.returncode != 0:
        sys.exit(f"`vwsdk --help` exited {run.returncode}: {run.stderr}")

    documented = doc_help_block(args.doc)
    if run.stdout == documented:
        print("OK: docs/CLI.md usage block matches `vwsdk --help`")
        return 0

    print(f"{args.doc} usage block is stale; diff (doc -> binary):")
    sys.stdout.writelines(
        difflib.unified_diff(
            documented.splitlines(keepends=True),
            run.stdout.splitlines(keepends=True),
            fromfile="docs/CLI.md",
            tofile="vwsdk --help",
        )
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
