#!/usr/bin/env python3
"""Gate bench results against the checked-in baseline.

Reads every BENCH_*.json in --baseline (normally bench/baseline/) and the
matching files in --current (normally the build's bench/ directory after
`ctest -L bench`), then fails when:

  * a current check has pass=false (a paper-value MISMATCH);
  * a baseline file or baseline check label is missing from the current
    run (a silently dropped reproduction check);
  * a bench's total wall time regressed more than --time-tolerance
    (default 20%) over its baseline, ignoring benches faster than
    --min-wall-ms in either run (timer noise, not signal).

`--update-baseline` instead copies the current files over the baseline --
the refresh workflow after an intentional perf change (see README).

Wall times are machine-dependent, so the two gates can be split:
`--no-time` keeps only the check gates (how CI compares against the
checked-in bench/baseline/, which was recorded on a different machine);
`--time-only` keeps only the wall-time gate (how CI compares against
the previous CI run's JSON, cached per runner class).

Exit code: 0 clean, 1 any failure, 2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def bench_files(directory: str) -> dict[str, str]:
    return {
        os.path.basename(path): path
        for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory of checked-in expected JSON")
    parser.add_argument("--current", required=True,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--time-tolerance", type=float, default=0.20,
                        help="allowed fractional wall-time regression")
    parser.add_argument("--min-wall-ms", type=float, default=25.0,
                        help="skip the time gate when both runs are faster")
    parser.add_argument("--no-time", action="store_true",
                        help="skip the wall-time gate entirely")
    parser.add_argument("--time-only", action="store_true",
                        help="skip the check gates, keep the time gate")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy current files over the baseline and exit")
    args = parser.parse_args()

    current = bench_files(args.current)
    if not current:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 2

    if args.update_baseline:
        os.makedirs(args.baseline, exist_ok=True)
        for name, path in current.items():
            shutil.copy(path, os.path.join(args.baseline, name))
            print(f"refreshed {name}")
        return 0

    baseline = bench_files(args.baseline)
    if not baseline:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 2

    if args.no_time and args.time_only:
        print("error: --no-time and --time-only are mutually exclusive",
              file=sys.stderr)
        return 2

    failures: list[str] = []

    if not args.time_only:
        for name, cur_path in sorted(current.items()):
            data = load(cur_path)
            for check in data.get("checks", []):
                if not check.get("pass", False):
                    failures.append(
                        f"{name}: MISMATCH: {check.get('label')} "
                        f"(paper={check.get('paper')} "
                        f"computed={check.get('computed')})")

    for name, base_path in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        base = load(base_path)
        cur = load(current[name])

        if not args.time_only:
            base_labels = {c["label"] for c in base.get("checks", [])}
            cur_labels = {c["label"] for c in cur.get("checks", [])}
            for dropped in sorted(base_labels - cur_labels):
                failures.append(
                    f"{name}: check dropped vs baseline: {dropped}")

        if args.no_time:
            continue
        base_ms = float(base.get("summary", {}).get("wall_ms", 0.0))
        cur_ms = float(cur.get("summary", {}).get("wall_ms", 0.0))
        if base_ms < args.min_wall_ms and cur_ms < args.min_wall_ms:
            continue
        if base_ms > 0 and cur_ms > base_ms * (1.0 + args.time_tolerance):
            failures.append(
                f"{name}: wall-time regression: {cur_ms:.1f} ms vs baseline "
                f"{base_ms:.1f} ms "
                f"(+{100.0 * (cur_ms / base_ms - 1.0):.0f}%, "
                f"tolerance {100.0 * args.time_tolerance:.0f}%)")

    checked = len(current)
    if failures:
        print(f"compare_bench: {len(failures)} failure(s) across "
              f"{checked} bench file(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"compare_bench: {checked} bench file(s) clean vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
