#!/usr/bin/env python3
"""Run clang-tidy over the tree with the checked-in .clang-tidy.

The wrapper behind both the `tidy` CI job and the `lint.tidy` ctest:

  * finds compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is always
    ON, so any configured build dir has one) and runs clang-tidy over
    every translation unit in src/ apps/ bench/ examples/ tests/;
  * `--changed` restricts the run to translation units touched since the
    merge base with the upstream branch (plus anything including a
    touched header) -- the fast pre-push mode;
  * exits EXIT_SKIP (77) when no clang-tidy binary is available, so the
    ctest registration can declare SKIP_RETURN_CODE 77 and skip cleanly
    where the tool is absent, like the Doxygen target does.

Warnings are errors (`--warnings-as-errors='*'`, matching the
WarningsAsErrors in .clang-tidy): any finding fails the run.  See
docs/STATIC_ANALYSIS.md for the check set and the NOLINT policy.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

EXIT_SKIP = 77  # mirrored by SKIP_RETURN_CODE in the ctest registration

SOURCE_ROOTS = ("src", "apps", "bench", "examples", "tests")


def find_clang_tidy(explicit: str | None) -> str | None:
    """The clang-tidy binary: --clang-tidy, $CLANG_TIDY, or the first
    versioned/unversioned binary on PATH."""
    candidates = []
    if explicit:
        candidates.append(explicit)
    if os.environ.get("CLANG_TIDY"):
        candidates.append(os.environ["CLANG_TIDY"])
    candidates.append("clang-tidy")
    candidates.extend(f"clang-tidy-{v}" for v in range(21, 13, -1))
    for candidate in candidates:
        path = shutil.which(candidate)
        if path:
            return path
    return None


def load_compile_db(build_dir: Path) -> list[dict]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        sys.exit(f"run_tidy: {db_path} not found -- configure first "
                 "(cmake -B build -S .); CMAKE_EXPORT_COMPILE_COMMANDS "
                 "is on by default")
    return json.loads(db_path.read_text(encoding="utf-8"))


def repo_sources(db: list[dict], root: Path) -> list[Path]:
    """The repo-owned translation units of the compile database (gtest
    and other fetched third-party TUs are excluded)."""
    sources = []
    for entry in db:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        try:
            relative = path.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if relative.parts and relative.parts[0] in SOURCE_ROOTS:
            sources.append(path.resolve())
    return sorted(set(sources))


def changed_paths(root: Path) -> set[str]:
    """Repo-relative paths touched vs the upstream merge base, plus any
    staged/unstaged working-tree changes."""

    def git_lines(*args: str) -> list[str]:
        result = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True, text=True, check=False)
        if result.returncode != 0:
            return []
        return [line for line in result.stdout.splitlines() if line]

    base = ""
    for upstream in ("@{upstream}", "origin/main", "origin/master"):
        lines = git_lines("merge-base", "HEAD", upstream)
        if lines:
            base = lines[0]
            break
    changed: set[str] = set()
    if base:
        changed.update(git_lines("diff", "--name-only", base, "HEAD"))
    changed.update(git_lines("diff", "--name-only"))
    changed.update(git_lines("diff", "--name-only", "--cached"))
    changed.update(git_lines("ls-files", "--others", "--exclude-standard"))
    return changed


def select_changed(sources: list[Path], root: Path) -> list[Path]:
    """The TUs to re-lint for `--changed`: every changed .cpp, plus
    every TU whose text names a changed header (a cheap include closure
    -- header basenames are unique enough in this repo)."""
    changed = changed_paths(root)
    changed_cpp = {root / p for p in changed if p.endswith(".cpp")}
    changed_headers = [Path(p).name for p in changed if p.endswith(".h")]
    selected = []
    for source in sources:
        if source in changed_cpp:
            selected.append(source)
            continue
        if changed_headers:
            try:
                text = source.read_text(encoding="utf-8")
            except OSError:
                continue
            if any(name in text for name in changed_headers):
                selected.append(source)
    return selected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", type=Path, default=Path("build"),
                        help="build dir holding compile_commands.json "
                             "(default: build)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: this script's "
                             "grandparent)")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY, "
                             "then PATH)")
    parser.add_argument("--changed", action="store_true",
                        help="only lint TUs touched since the upstream "
                             "merge base (fast pre-push mode)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="directory of clean-result markers; a TU "
                             "whose key (tidy version, .clang-tidy, "
                             "compile command, source, global header "
                             "digest) is unchanged is skipped")
    parser.add_argument("--jobs", "-j", type=int,
                        default=os.cpu_count() or 2,
                        help="parallel clang-tidy processes")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="restrict to these files/directories")
    args = parser.parse_args()

    root = args.root or Path(__file__).resolve().parent.parent
    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        print("run_tidy: no clang-tidy binary found -- skipping "
              f"(exit {EXIT_SKIP}); install clang-tidy to run this lane "
              "locally")
        return EXIT_SKIP

    db = load_compile_db(args.build_dir)
    sources = repo_sources(db, root)
    if args.paths:
        wanted = [p.resolve() for p in args.paths]
        sources = [s for s in sources
                   if any(s == w or w in s.parents for w in wanted)]
    if args.changed:
        sources = select_changed(sources, root)
    if not sources:
        print("run_tidy: nothing to lint")
        return 0

    command_tail = [
        "-p", str(args.build_dir),
        "--quiet",
        "--warnings-as-errors=*",
    ]

    # Clean-result cache: a TU is skipped when nothing that could change
    # its findings changed.  The key folds in a digest of EVERY repo
    # header, so any header edit re-lints the whole tree -- conservative
    # (no per-TU include closure to get wrong) and still what makes the
    # common source-only iteration fast.
    cache_keys: dict[Path, str] = {}
    if args.cache_dir:
        args.cache_dir.mkdir(parents=True, exist_ok=True)
        version = subprocess.run([binary, "--version"], capture_output=True,
                                 text=True, check=False).stdout
        config = (root / ".clang-tidy").read_bytes() \
            if (root / ".clang-tidy").is_file() else b""
        headers = hashlib.sha256()
        for root_dir in SOURCE_ROOTS:
            for header in sorted((root / root_dir).rglob("*.h")):
                headers.update(header.read_bytes())
        commands = {}
        for entry in db:
            path = Path(entry["file"])
            if not path.is_absolute():
                path = Path(entry["directory"]) / path
            commands[path.resolve()] = \
                entry.get("command") or " ".join(entry.get("arguments", []))
        base = hashlib.sha256(version.encode() + config +
                              headers.digest()).hexdigest()
        for source in sources:
            key = hashlib.sha256(
                (base + commands.get(source, "")).encode() +
                source.read_bytes()).hexdigest()
            cache_keys[source] = key
        cached = [s for s in sources
                  if (args.cache_dir / cache_keys[s]).is_file()]
        if cached:
            print(f"run_tidy: {len(cached)} translation unit(s) clean in "
                  "cache, skipping")
        sources = [s for s in sources if s not in set(cached)]
        if not sources:
            print("run_tidy: everything cached clean")
            return 0

    def run_one(source: Path) -> tuple[Path, int, str]:
        result = subprocess.run(
            [binary, *command_tail, str(source)],
            capture_output=True, text=True, check=False)
        # clang-tidy writes "N warnings generated" chatter to stderr even
        # on clean runs; stdout carries the findings.
        output = result.stdout.strip()
        if result.returncode != 0 and not output:
            output = result.stderr.strip()
        return source, result.returncode, output

    print(f"run_tidy: {binary}, {len(sources)} translation unit(s), "
          f"{args.jobs} job(s)")
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, returncode, output in pool.map(run_one, sources):
            if returncode != 0:
                failures += 1
                print(f"FAIL {source.relative_to(root)}")
                if output:
                    print(output)
            elif args.cache_dir:
                (args.cache_dir / cache_keys[source]).touch()
    print(f"run_tidy: {failures} of {len(sources)} translation unit(s) "
          "failed" if failures else
          f"run_tidy: all {len(sources)} translation unit(s) clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
