#!/usr/bin/env python3
"""Repo-invariant lint: the static checks the compiler cannot express.

Registered as the ctest ``lint.invariants`` (label "lint"), mirroring
tools/check_doc_comments.py.  Five rules, each enforcing a contract the
codebase documents elsewhere:

  determinism      no nondeterminism sources (std::rand, time(),
                   std::random_device, high_resolution_clock) anywhere
                   in src/ outside common/random.* -- the engine's
                   byte-identical-results contract depends on it.
  signal-safety    every function installed as a signal handler in
                   src/serve/server.cpp touches only async-signal-safe
                   operations: stores to lock-free atomic (or
                   `volatile sig_atomic_t`) globals and `write(2)`.
                   Lock-free atomics are preferred -- the handler runs
                   on whichever thread receives the signal while the
                   daemon loop reads the flag from another, and
                   sig_atomic_t is signal-safe but not thread-safe.
  mutex-annotations  concurrent code locks through the annotated
                   vwsdk::Mutex wrappers (common/mutex.h): no raw
                   std::mutex / std::lock_guard / std::condition_variable
                   outside that header, and every Mutex member is named
                   by at least one VWSDK_GUARDED_BY / VWSDK_REQUIRES /
                   VWSDK_EXCLUDES annotation in its file.
  error-codes      the wire names returned by error_code_name() in
                   src/common/error.cpp match the error-code table in
                   docs/SERVE.md exactly (both directions).
  registry-hygiene every mapper/backend .cpp registers itself exactly
                   once, and the linker-anchor bootstrap in the registry
                   .cpp declares and calls each anchor exactly once --
                   a silently dropped registration is invisible at
                   compile time and only fails at a distant call site.
  doc-links        every docs/*.md page is linked from README.md or
                   another docs page -- an orphaned page silently rots.
  ceil-div         no hand-rolled `(a + b - 1) / b` ceiling divisions in
                   src/ -- that form overflows for a near INT64_MAX; use
                   ceil_div / checked_ceil_div (common/math_util.h,
                   common/checked_math.h), whose `a/b + (a%b != 0)`
                   formulation cannot.
  nolint-discipline  every NOLINT / NOLINTNEXTLINE / NOLINTBEGIN in src/
                   names a specific clang-tidy check (no bare or `(*)`
                   blanket suppressions) and carries a justification
                   after the check list (docs/STATIC_ANALYSIS.md).

``--self-test`` first runs every rule against embedded known-bad
snippets and fails if any rule has gone blind; then the real tree is
linted.  Rules operate on an in-memory {path: text} tree so the
self-tests need no temporary files.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Infrastructure: rules see a Tree = dict[str, str] of repo-relative
# posix paths to file text, pre-filtered to the files lint cares about.
# --------------------------------------------------------------------------

Failure = str  # "path:line: message"


def strip_comments(text: str) -> str:
    """C++ text with // and /* */ comments blanked (newlines kept, so
    line numbers survive).  String literals are not parsed; the banned
    tokens do not legitimately appear inside strings in this repo."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:end]))
            i = end
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def find_all(pattern: str, text: str) -> list[re.Match]:
    return list(re.finditer(pattern, text, re.MULTILINE))


# --------------------------------------------------------------------------
# Rule: determinism
# --------------------------------------------------------------------------

DETERMINISM_ALLOWED = ("src/common/random.h", "src/common/random.cpp")

# Token -> human name.  `time(` is matched as a call (optionally
# ::-qualified) not preceded by an identifier character or member
# access, so wall_time(...) and obj.time(...) stay legal.
DETERMINISM_BANNED = [
    (r"\bstd::rand\b", "std::rand"),
    (r"(?:::|(?<![\w.:]))s?rand\s*\(", "rand()/srand()"),
    (r"\brandom_device\b", "std::random_device"),
    (r"\bhigh_resolution_clock\b", "high_resolution_clock"),
    (r"(?:::|(?<![\w.:]))time\s*\(", "time()"),
]


def rule_determinism(tree: dict[str, str]) -> list[Failure]:
    """Nondeterminism sources are confined to common/random -- every
    other src/ file must produce byte-identical output run to run."""
    failures = []
    for path, text in sorted(tree.items()):
        if not path.startswith("src/") or path in DETERMINISM_ALLOWED:
            continue
        if not path.endswith((".h", ".cpp")):
            continue
        code = strip_comments(text)
        for pattern, name in DETERMINISM_BANNED:
            for match in find_all(pattern, code):
                failures.append(
                    f"{path}:{line_of(code, match.start())}: nondeterminism "
                    f"source {name} outside common/random (determinism "
                    "contract, docs/CONCURRENCY.md)")
    return failures


# --------------------------------------------------------------------------
# Rule: signal-safety
# --------------------------------------------------------------------------

SERVER_CPP = "src/serve/server.cpp"


def function_body(code: str, name: str) -> tuple[str, int] | None:
    """The brace-balanced body of `name(...) {...}` and its offset."""
    match = re.search(rf"\b{re.escape(name)}\s*\([^)]*\)\s*{{", code)
    if not match:
        return None
    start = match.end() - 1
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[start + 1:i], start + 1
    return None


def rule_signal_safety(tree: dict[str, str]) -> list[Failure]:
    """Signal handlers may only store to lock-free atomic / volatile
    sig_atomic_t globals and call write(2) -- the async-signal-safe
    vocabulary."""
    text = tree.get(SERVER_CPP)
    if text is None:
        return [f"{SERVER_CPP}:1: file missing (signal-safety rule has "
                "nothing to check; update vwsdk_lint.py if it moved)"]
    code = strip_comments(text)

    handlers = set()
    for match in find_all(r"\bsa_handler\s*=\s*(\w+)", code):
        handlers.add(match.group(1))
    for match in find_all(r"\bsignal\s*\(\s*\w+\s*,\s*(\w+)\s*\)", code):
        handlers.add(match.group(1))
    handlers -= {"SIG_IGN", "SIG_DFL"}
    if not handlers:
        return [f"{SERVER_CPP}:1: no signal handler found (the daemon "
                "must install SIGINT/SIGTERM handlers; update "
                "vwsdk_lint.py if installation moved)"]

    sig_atomic_globals = {
        m.group(1)
        for m in find_all(
            r"volatile\s+(?:std::)?sig_atomic_t\s+(\w+)", code)
    }
    sig_atomic_globals |= {
        m.group(1)
        for m in find_all(
            r"std::atomic<\s*(?:int|(?:std::)?sig_atomic_t)\s*>\s+(\w+)",
            code)
    }

    failures = []
    for handler in sorted(handlers):
        body_at = function_body(code, handler)
        if body_at is None:
            failures.append(f"{SERVER_CPP}:1: signal handler '{handler}' "
                            "has no body in this file")
            continue
        body, offset = body_at
        # Every call in the body must be write(); everything else on
        # the async-signal-safe list this repo needs is an operator.
        for match in find_all(r"(?<![\w.:])(\w+)\s*\(", body):
            callee = match.group(1)
            if callee in ("write", "if", "while", "for", "switch",
                          "return", "sizeof"):
                continue
            failures.append(
                f"{SERVER_CPP}:{line_of(code, offset + match.start())}: "
                f"signal handler '{handler}' calls '{callee}' -- only "
                "write(2) is async-signal-safe here")
        # Every assignment target that is not a body-local variable
        # must be a volatile sig_atomic_t global.
        locals_ = {
            m.group(1)
            for m in find_all(
                r"(?:const\s+)?(?:int|char|ssize_t|long)\s+(\w+)\s*=", body)
        }
        for match in find_all(r"(?<![\w.:=!<>])(\w+)\s*=[^=]", body):
            target = match.group(1)
            if target in locals_ or target in ("const", "int", "char",
                                               "ssize_t", "long"):
                continue
            if target not in sig_atomic_globals:
                failures.append(
                    f"{SERVER_CPP}:{line_of(code, offset + match.start())}: "
                    f"signal handler '{handler}' writes '{target}', which "
                    "is not a volatile sig_atomic_t global")
    return failures


# --------------------------------------------------------------------------
# Rule: mutex-annotations
# --------------------------------------------------------------------------

MUTEX_HOME = "src/common/mutex.h"
RAW_LOCK_TOKENS = [
    r"\bstd::mutex\b", r"\bstd::recursive_mutex\b", r"\bstd::shared_mutex\b",
    r"\bstd::condition_variable\b", r"\bstd::condition_variable_any\b",
    r"\bstd::lock_guard\b", r"\bstd::unique_lock\b", r"\bstd::scoped_lock\b",
]


def rule_mutex_annotations(tree: dict[str, str]) -> list[Failure]:
    """Raw standard locking types are confined to common/mutex.h; every
    vwsdk::Mutex member is named by at least one thread-safety
    annotation in its file (an unannotated mutex guards nothing the
    compiler can check)."""
    failures = []
    for path, text in sorted(tree.items()):
        if not path.startswith("src/") or path == MUTEX_HOME:
            continue
        if not path.endswith((".h", ".cpp")):
            continue
        code = strip_comments(text)
        for token in RAW_LOCK_TOKENS:
            for match in find_all(token, code):
                failures.append(
                    f"{path}:{line_of(code, match.start())}: raw "
                    f"{match.group(0)} -- use the annotated vwsdk::Mutex / "
                    "MutexLock / CondVar (common/mutex.h) so clang "
                    "-Wthread-safety can check the locking")
        for match in find_all(
                r"(?:^|\s)(?:mutable\s+)?Mutex\s+(\w+)\s*;", code):
            name = match.group(1)
            used = re.search(
                r"VWSDK_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|"
                r"ACQUIRE|RELEASE)\s*\(\s*" + re.escape(name), code)
            if not used:
                failures.append(
                    f"{path}:{line_of(code, match.start(1))}: Mutex "
                    f"'{name}' has no VWSDK_GUARDED_BY/REQUIRES/EXCLUDES "
                    "user in this file -- annotate what it protects")
    return failures


# --------------------------------------------------------------------------
# Rule: error-codes
# --------------------------------------------------------------------------

ERROR_CPP = "src/common/error.cpp"
SERVE_MD = "docs/SERVE.md"


def rule_error_codes(tree: dict[str, str]) -> list[Failure]:
    """error_code_name()'s wire names and the docs/SERVE.md error table
    must agree exactly -- the table is the protocol's normative list."""
    code_text = tree.get(ERROR_CPP)
    doc_text = tree.get(SERVE_MD)
    failures = []
    if code_text is None:
        return [f"{ERROR_CPP}:1: file missing (error-codes rule)"]
    if doc_text is None:
        return [f"{SERVE_MD}:1: file missing (error-codes rule)"]

    body_at = function_body(strip_comments(code_text), "error_code_name")
    if body_at is None:
        return [f"{ERROR_CPP}:1: error_code_name() not found"]
    in_code = {m.group(1)
               for m in find_all(r'return\s+"([a-z_]+)"', body_at[0])}

    # Error-table rows are the only SERVE.md rows whose last cell is a
    # bare exit-code integer: | `name` | meaning | 2 |
    in_docs = {m.group(1)
               for m in find_all(r"^\|\s*`([a-z_]+)`\s*\|[^|]*\|\s*\d+\s*\|",
                                 doc_text)}
    if not in_docs:
        return [f"{SERVE_MD}:1: no error-code table rows found (the "
                "`| `code` | meaning | exit |` table moved or changed "
                "shape; update vwsdk_lint.py)"]
    for name in sorted(in_code - in_docs):
        failures.append(f"{SERVE_MD}:1: wire name '{name}' returned by "
                        f"error_code_name() is missing from the error table")
    for name in sorted(in_docs - in_code):
        failures.append(f"{SERVE_MD}:1: documented error code '{name}' is "
                        f"not a wire name error_code_name() returns")
    return failures


# --------------------------------------------------------------------------
# Rule: registry-hygiene
# --------------------------------------------------------------------------

REGISTRIES = [
    # (bootstrap file, registrar-fn pattern, files that must self-register)
    ("src/core/mapper_registry.cpp", r"register_\w+_mapper",
     r"src/core/\w+_mapper\.cpp"),
    ("src/tensor/exec_backend.cpp", r"register_\w+_backend",
     r"src/tensor/\w+_backend\.cpp"),
]


def rule_registry_hygiene(tree: dict[str, str]) -> list[Failure]:
    """Each mapper/backend translation unit calls registry.add exactly
    once inside exactly one register_* anchor, and the bootstrap
    declares + calls every anchor exactly once (the linker anchor is
    what keeps a static-library registration from being dropped)."""
    failures = []
    for bootstrap_path, anchor_pat, unit_pat in REGISTRIES:
        bootstrap = tree.get(bootstrap_path)
        if bootstrap is None:
            failures.append(f"{bootstrap_path}:1: file missing "
                            "(registry-hygiene rule)")
            continue
        bcode = strip_comments(bootstrap)

        declared = [m.group(1) for m in find_all(
            rf"void\s+({anchor_pat})\s*\([^)]*\)\s*;", bcode)]
        called = [m.group(1) for m in find_all(
            rf"(?:detail::)?({anchor_pat})\s*\(\s*(?:built|registry)\s*\)",
            bcode)]
        for anchor in declared:
            if called.count(anchor) != 1:
                failures.append(
                    f"{bootstrap_path}:1: anchor '{anchor}' is declared but "
                    f"called {called.count(anchor)} times in the bootstrap "
                    "(must be exactly once)")
        for anchor in called:
            if anchor not in declared:
                failures.append(
                    f"{bootstrap_path}:1: bootstrap calls '{anchor}' "
                    "without a forward declaration anchor")

        defined: dict[str, str] = {}
        for path, text in sorted(tree.items()):
            if not re.fullmatch(unit_pat, path) and path != bootstrap_path:
                continue
            code = strip_comments(text)
            definitions = [m.group(1) for m in find_all(
                rf"void\s+({anchor_pat})\s*\([^)]*\)\s*{{", code)]
            adds = len(find_all(r"\bregistry\s*\.\s*add\s*\(", code))
            if path != bootstrap_path and not definitions:
                failures.append(
                    f"{path}:1: defines no register_* anchor -- the "
                    "registry bootstrap cannot pull this unit from the "
                    "static library")
                continue
            if adds != len(definitions):
                failures.append(
                    f"{path}:1: {adds} registry.add call(s) across "
                    f"{len(definitions)} register_* definition(s) -- each "
                    "anchor must register exactly once")
            for name in definitions:
                if name in defined:
                    failures.append(
                        f"{path}:1: anchor '{name}' is defined here and in "
                        f"{defined[name]} -- duplicate registration")
                defined[name] = path

        for anchor in declared:
            if anchor not in defined:
                failures.append(
                    f"{bootstrap_path}:1: anchor '{anchor}' has no "
                    "definition in any registered translation unit")
        for anchor, path in sorted(defined.items()):
            if path != bootstrap_path and anchor not in declared:
                failures.append(
                    f"{path}:1: anchor '{anchor}' is defined but the "
                    "bootstrap never declares/calls it -- the linker may "
                    "silently drop this registration")
    return failures


# --------------------------------------------------------------------------
# Rule: doc-links
# --------------------------------------------------------------------------


def rule_doc_links(tree: dict[str, str]) -> list[Failure]:
    """Every docs/*.md page is referenced by name from README.md or
    from another docs page -- no orphaned documentation."""
    failures = []
    doc_pages = [p for p in tree if p.startswith("docs/")
                 and p.endswith(".md")]
    for page in sorted(doc_pages):
        name = page.split("/", 1)[1]
        referenced = False
        for other, text in tree.items():
            if other == page:
                continue
            if (other == "README.md" or
                    (other.startswith("docs/") and other.endswith(".md"))):
                if name in text:
                    referenced = True
                    break
        if not referenced:
            failures.append(f"{page}:1: not linked from README.md or any "
                            "other docs page (orphaned documentation)")
    return failures


# --------------------------------------------------------------------------
# Rule: ceil-div
# --------------------------------------------------------------------------

# The textbook ceiling division `(a + b - 1) / b` (divisor == second
# addend, in either `(a + b - 1)` or `(b - 1 + a)` order).  `a + b - 1`
# overflows for a near INT64_MAX, so the repo's only ceiling-division
# spelling is ceil_div/checked_ceil_div, which use `a/b + (a%b != 0)`.
_OPERAND = r"[A-Za-z_][\w]*(?:(?:\.|->)[A-Za-z_][\w]*)*(?:\(\s*\))?"
CEIL_DIV_PATTERNS = [
    re.compile(r"\(\s*(?:%s)\s*\+\s*(%s)\s*-\s*1\s*\)\s*/\s*(%s)"
               % (_OPERAND, _OPERAND, _OPERAND)),
    re.compile(r"\(\s*(%s)\s*-\s*1\s*\+\s*(?:%s)\s*\)\s*/\s*(%s)"
               % (_OPERAND, _OPERAND, _OPERAND)),
]


def rule_ceil_div(tree: dict[str, str]) -> list[Failure]:
    """Hand-rolled `(a + b - 1) / b` ceiling divisions are banned in
    src/: the `a + b - 1` intermediate overflows near INT64_MAX.  Use
    ceil_div / checked_ceil_div (common/math_util.h,
    common/checked_math.h) instead."""
    failures = []
    for path, text in sorted(tree.items()):
        if not path.startswith("src/") or not path.endswith((".h", ".cpp")):
            continue
        code = strip_comments(text)
        for pattern in CEIL_DIV_PATTERNS:
            for match in pattern.finditer(code):
                if match.group(1) != match.group(2):
                    continue  # (a + b - 1) / c is not a ceiling division
                failures.append(
                    f"{path}:{line_of(code, match.start())}: hand-rolled "
                    f"ceiling division '{match.group(0)}' -- the a+b-1 "
                    "intermediate overflows near INT64_MAX; use ceil_div/"
                    "checked_ceil_div (common/math_util.h)")
    return failures


# --------------------------------------------------------------------------
# Rule: nolint-discipline
# --------------------------------------------------------------------------

# `NOLINT`, optionally NEXTLINE/BEGIN/END, optionally a (check-list),
# then the rest of the line (the justification slot).  Matched on RAW
# text -- NOLINT markers live inside comments by construction.
NOLINT_RE = re.compile(
    r"NOLINT(NEXTLINE|BEGIN|END)?(\([^)\n]*\))?([^\n]*)")
NOLINT_CHECKS_RE = re.compile(r"[a-z][a-z0-9]*(?:[-.][a-z0-9]+)+"
                              r"(?:\s*,\s*[a-z][a-z0-9]*(?:[-.][a-z0-9]+)+)*")


def rule_nolint_discipline(tree: dict[str, str]) -> list[Failure]:
    """Every clang-tidy suppression in src/ must name the specific
    check(s) it silences -- no bare `// NOLINT` and no `NOLINT(*)` -- and
    carry a justification after the check list, so a suppression cannot
    outlive the reason it was added (docs/STATIC_ANALYSIS.md)."""
    failures = []
    for path, text in sorted(tree.items()):
        if not path.startswith("src/") or not path.endswith((".h", ".cpp")):
            continue
        for match in NOLINT_RE.finditer(text):
            where = f"{path}:{line_of(text, match.start())}"
            variant = match.group(1) or ""
            checks = match.group(2)
            rest = match.group(3) or ""
            if checks is None:
                failures.append(
                    f"{where}: bare NOLINT{variant} -- name the specific "
                    f"check(s): NOLINT{variant}(check-name): why")
                continue
            inner = checks[1:-1].strip()
            if not inner or "*" in inner or \
                    not NOLINT_CHECKS_RE.fullmatch(inner):
                failures.append(
                    f"{where}: NOLINT{variant}({inner}) is a blanket or "
                    "malformed suppression -- name the specific clang-tidy "
                    "check(s), e.g. NOLINT(bugprone-integer-division)")
                continue
            if variant == "END":
                continue  # the justification lives on the matching BEGIN
            justification = rest.strip().lstrip(":-").strip()
            if len(justification) < 8:
                failures.append(
                    f"{where}: NOLINT{variant}({inner}) has no "
                    "justification -- append why the finding is a false "
                    "positive or intentional, e.g. "
                    f"NOLINT{variant}({inner}): <reason>")
    return failures


# --------------------------------------------------------------------------
# Self-tests: one known-bad snippet per rule; a rule that stays silent
# on its bad snippet has gone blind and the lint run fails.
# --------------------------------------------------------------------------

GOOD_SERVER = """
volatile std::sig_atomic_t g_signal = 0;
extern "C" void handle_signal(int signum) { g_signal = signum; }
int run() {
  struct sigaction action;
  action.sa_handler = handle_signal;
  return 0;
}
"""

GOOD_SERVER_ATOMIC = """
std::atomic<int> g_signal{0};
std::atomic<int> g_wake_fd{-1};
extern "C" void handle_signal(int signum) {
  g_signal = signum;
  const int fd = g_wake_fd;
  if (fd >= 0) {
    const char byte = 1;
    const ssize_t ignored = ::write(fd, &byte, 1);
    (void)ignored;
  }
}
int run() {
  struct sigaction action;
  action.sa_handler = handle_signal;
  return 0;
}
"""

SELF_TESTS = [
    ("determinism", rule_determinism, {
        "src/core/foo.cpp": "int f() { return std::rand(); }",
    }),
    ("determinism", rule_determinism, {
        "src/sim/t.cpp": "long n = ::time(nullptr);",
    }),
    ("signal-safety", rule_signal_safety, {
        SERVER_CPP: """
volatile std::sig_atomic_t g_signal = 0;
extern "C" void handle_signal(int signum) {
  g_signal = signum;
  printf("caught\\n");
}
int run() { struct sigaction a; a.sa_handler = handle_signal; return 0; }
""",
    }),
    ("signal-safety", rule_signal_safety, {
        SERVER_CPP: """
int g_plain = 0;
extern "C" void handle_signal(int signum) { g_plain = signum; }
int run() { struct sigaction a; a.sa_handler = handle_signal; return 0; }
""",
    }),
    ("mutex-annotations", rule_mutex_annotations, {
        "src/core/bad.h": "class C { std::mutex mutex_; };",
    }),
    ("mutex-annotations", rule_mutex_annotations, {
        "src/core/bad.h":
            "class C { Mutex mutex_; int x; };",  # no GUARDED_BY user
    }),
    ("error-codes", rule_error_codes, {
        ERROR_CPP: 'const char* error_code_name(ErrorCode c) {'
                   ' return "zombie_code"; }',
        SERVE_MD: "| `runtime` | boom | 1 |",
    }),
    ("registry-hygiene", rule_registry_hygiene, {
        "src/core/mapper_registry.cpp": """
void register_good_mapper(MapperRegistry& registry);
void bootstrap() { register_good_mapper(built); }
""",
        # registers twice inside one anchor
        "src/core/good_mapper.cpp": """
void register_good_mapper(MapperRegistry& registry) {
  registry.add(a);
  registry.add(b);
}
""",
        "src/tensor/exec_backend.cpp": "",
    }),
    ("registry-hygiene", rule_registry_hygiene, {
        "src/core/mapper_registry.cpp": """
void register_good_mapper(MapperRegistry& registry);
void bootstrap() { register_good_mapper(built); }
""",
        "src/core/good_mapper.cpp": """
void register_good_mapper(MapperRegistry& registry) { registry.add(a); }
""",
        # orphan: defined, never anchored -> linker may drop it
        "src/core/orphan_mapper.cpp": """
void register_orphan_mapper(MapperRegistry& registry) { registry.add(a); }
""",
        "src/tensor/exec_backend.cpp": "",
    }),
    ("doc-links", rule_doc_links, {
        "README.md": "see docs/CLI.md",
        "docs/CLI.md": "the CLI",
        "docs/ORPHAN.md": "nobody links here",
    }),
    ("ceil-div", rule_ceil_div, {
        "src/sim/bad.cpp": "const Count chunk = (n + k - 1) / k;",
    }),
    ("ceil-div", rule_ceil_div, {
        "src/mapping/bad.cpp":
            "Cycles t = (total.cycles() + width - 1) / width;",
    }),
    ("ceil-div", rule_ceil_div, {
        "src/sim/bad2.cpp": "Count c = (k - 1 + n) / k;",
    }),
    ("nolint-discipline", rule_nolint_discipline, {
        "src/core/bad.cpp": "int x = f();  // NOLINT\n",
    }),
    ("nolint-discipline", rule_nolint_discipline, {
        "src/core/bad.cpp":
            "// NOLINTNEXTLINE\nint x = f();\n",
    }),
    ("nolint-discipline", rule_nolint_discipline, {
        "src/core/bad.cpp":
            "int x = f();  // NOLINT(*): silence everything\n",
    }),
    ("nolint-discipline", rule_nolint_discipline, {
        # specific check but no justification
        "src/core/bad.cpp":
            "// NOLINTNEXTLINE(bugprone-integer-division)\nint x = a / b;\n",
    }),
]

# Clean fixtures: every rule must also stay *silent* on a minimal good
# tree, or it would fail the real run with false positives.
CLEAN_TREES = [
    (rule_determinism, {
        "src/common/random.cpp": "int x = std::random_device{}();",
        "src/core/ok.cpp": "Cycles wall_time(int t);  // time() in comment",
    }),
    (rule_signal_safety, {SERVER_CPP: GOOD_SERVER}),
    (rule_signal_safety, {SERVER_CPP: GOOD_SERVER_ATOMIC}),
    (rule_mutex_annotations, {
        "src/common/mutex.h": "class Mutex { std::mutex m_; };",
        "src/core/ok.h":
            "class C { Mutex mutex_; int x VWSDK_GUARDED_BY(mutex_); };",
    }),
    (rule_error_codes, {
        ERROR_CPP: 'const char* error_code_name(ErrorCode c) {'
                   ' return "runtime"; }',
        SERVE_MD: "| `runtime` | boom | 1 |",
    }),
    (rule_doc_links, {
        "README.md": "see docs/CLI.md",
        "docs/CLI.md": "the CLI",
    }),
    (rule_ceil_div, {
        # ceil_div calls, a commented example, a /b-with-different-divisor
        # expression, and a +1-1 that is not the banned shape.
        "src/sim/ok.cpp": (
            "Count a = ceil_div(n, k);\n"
            "// the old form was (n + k - 1) / k\n"
            "Count b = (n + m - 1) / 2;\n"
            "Count c = checked_ceil_div(n, k);\n"),
    }),
    (rule_nolint_discipline, {
        "src/core/ok.cpp": (
            "// NOLINTNEXTLINE(bugprone-integer-division): intentional "
            "truncation, the remainder is spread below\n"
            "int x = a / b;\n"
            "int y = f();  // NOLINT(performance-unnecessary-copy-"
            "initialization): the copy pins lifetime across the callback\n"),
    }),
]


def run_self_tests() -> list[str]:
    problems = []
    for name, rule, tree in SELF_TESTS:
        if not rule(tree):
            problems.append(
                f"self-test: rule '{name}' did not fire on its known-bad "
                "snippet -- the rule has gone blind")
    for rule, tree in CLEAN_TREES:
        failures = rule(tree)
        if failures:
            problems.append(
                f"self-test: rule '{rule.__name__}' false-positives on a "
                f"clean tree: {failures[0]}")
    return problems


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = [
    ("determinism", rule_determinism),
    ("signal-safety", rule_signal_safety),
    ("mutex-annotations", rule_mutex_annotations),
    ("error-codes", rule_error_codes),
    ("registry-hygiene", rule_registry_hygiene),
    ("doc-links", rule_doc_links),
    ("ceil-div", rule_ceil_div),
    ("nolint-discipline", rule_nolint_discipline),
]


def load_tree(root: Path) -> dict[str, str]:
    tree: dict[str, str] = {}
    patterns = ["src/**/*.h", "src/**/*.cpp", "docs/*.md", "README.md"]
    for pattern in patterns:
        for path in root.glob(pattern):
            tree[path.relative_to(root).as_posix()] = path.read_text(
                encoding="utf-8")
    return tree


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on known-bad input "
                             "before linting the real tree")
    parser.add_argument("--rule", action="append", default=None,
                        help="run only the named rule(s)")
    args = parser.parse_args()

    if args.self_test:
        problems = run_self_tests()
        for problem in problems:
            print(problem)
        if problems:
            return 1
        print(f"vwsdk_lint self-test: {len(SELF_TESTS)} bad-snippet + "
              f"{len(CLEAN_TREES)} clean-tree checks passed")

    tree = load_tree(args.root)
    if not any(p.startswith("src/") for p in tree):
        sys.exit(f"no src/ files found under {args.root} -- wrong --root?")

    failures: list[Failure] = []
    for name, rule in RULES:
        if args.rule and name not in args.rule:
            continue
        failures.extend(rule(tree))
    for failure in failures:
        print(failure)
    print(f"vwsdk_lint: {len(tree)} file(s), {len(failures)} problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
