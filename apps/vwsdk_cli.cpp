/// The `vwsdk` command-line tool: run the paper's mapping algorithms over
/// arbitrary networks -- model-zoo names or network-spec files (JSON/CSV,
/// docs/FORMATS.md) -- on arbitrary array geometries, without recompiling.
///
///   vwsdk map --net vgg16
///   vwsdk compare --net resnet18 --array 256x256
///   vwsdk sweep --nets vgg13,resnet18 --arrays paper --format csv
///   vwsdk zoo --export vgg16 > vgg16.json
///   vwsdk serve --max-inflight 8
///
/// Every subcommand is a thin shell over serve/service.h's ServiceApi:
/// flags become a query, the service answers it, and the shell picks the
/// rendering -- which is why `vwsdk serve` (the NDJSON daemon over the
/// same service) returns byte-identical payloads to the one-shot
/// `--format json` invocations.
///
/// Subcommand reference (flags, exit codes, sample output): docs/CLI.md.
/// The global --help text below is diffed verbatim against that page by
/// the `cli.help_matches_doc` ctest, so edit both together.

#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "vwsdk.h"

namespace {

using namespace vwsdk;

/// Write through `path` ("-" = stdout); throws on an unopenable path.
void with_output(const std::string& path,
                 const std::function<void(std::ostream&)>& write) {
  if (path == "-") {
    write(std::cout);
    return;
  }
  std::ofstream os(path);
  VWSDK_REQUIRE(os.good(), cat("cannot open output file \"", path, "\""));
  write(os);
  os.flush();
  if (!os.good()) {
    throw Error(cat("failed writing output file \"", path, "\""));
  }
}

/// Shared options of the network-running subcommands.
void add_net_options(ArgParser& args) {
  args.add_option("array", "",
                  "PIM array geometry RxC (default: the spec's array, "
                  "else 512x512)");
  add_objective_option(args);
  args.add_int_option("threads", 0,
                      "worker threads (0 = VWSDK_THREADS, then hardware)");
  args.add_option("out", "-", "output path, '-' = stdout");
  args.add_flag("stats", "print pool/cache statistics to stderr");
}

/// The one ServiceApi behind a one-shot subcommand run.
ServiceApi service_from_args(const ArgParser& args) {
  // Bounded so --threads 4294967296 fails instead of wrapping to 0
  // (which silently means "auto-detect").
  return ServiceApi(static_cast<int>(
      int_in_range(args, "threads", 0, std::numeric_limits<int>::max())));
}

/// The `--stats` stderr line, printed after the subcommand's output so
/// scripts capturing stdout stay unaffected.
void maybe_print_stats(const ArgParser& args, const ServiceApi& api) {
  if (args.get_flag("stats")) {
    std::cerr << stats_line(api.stats()) << "\n";
  }
}

void require_no_positional(const ArgParser& args) {
  VWSDK_REQUIRE(args.positional().empty(),
                cat("unexpected positional argument \"",
                    args.positional().front(), "\""));
}

std::string format_from_args(const ArgParser& args,
                             const std::vector<std::string>& allowed) {
  const std::string format = to_lower(args.get("format"));
  for (const std::string& candidate : allowed) {
    if (format == candidate) {
      return format;
    }
  }
  throw InvalidArgument(cat("unknown --format \"", args.get("format"),
                            "\" (expected ", join(allowed, ", "), ")"));
}

/// Per-layer table of one result (the `map` view).  Under a non-cycles
/// objective the score column appears after the cycles; the default
/// cycles view is unchanged.
TextTable result_table(const NetworkMappingResult& result) {
  const bool scored = result.objective != cycles_objective().name();
  const std::string unit = objective_by_name(result.objective).unit();
  std::vector<std::string> headers{"#", "layer", "image",
                                   "kernel (KxKxICxOC)", "groups",
                                   "mapping (PWxICtxOCt)", "#PW", "cycles"};
  if (scored) {
    headers.push_back(cat(result.objective, " (", unit, ")"));
  }
  TextTable table(headers);
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const LayerMapping& lm = result.layers[i];
    const ConvLayerDesc& layer = lm.layer;
    std::vector<std::string> row{
        std::to_string(i + 1), layer.name,
        cat(layer.ifm_w, "x", layer.ifm_h),
        cat(layer.kernel_w, "x", layer.kernel_h, "x", layer.in_channels,
            "x", layer.out_channels),
        std::to_string(layer.groups), lm.decision.table_entry(),
        std::to_string(lm.decision.cost.n_parallel_windows),
        std::to_string(lm.cycles())};
    if (scored) {
      row.push_back(format_fixed(lm.score(), 1));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> total{"", "total", "", "", "", "", "",
                                 std::to_string(result.total_cycles())};
  if (scored) {
    total.push_back(format_fixed(result.total_score(), 1));
  }
  table.add_row(std::move(total));
  return table;
}

int run_map(int argc, const char* const* argv) {
  ArgParser args("vwsdk map",
                 "map every layer of a network with one algorithm");
  args.add_option("net", "", "model-zoo name or spec file (required)");
  args.add_option("mapper", "vw-sdk",
                  cat("mapping algorithm (",
                      MapperRegistry::instance().known_names(), ")"));
  args.add_option("format", "table", "output format: table, csv, or json");
  add_net_options(args);
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  VWSDK_REQUIRE(!args.get("net").empty(), "--net is required");
  const std::string format =
      format_from_args(args, {"table", "csv", "json"});

  MapQuery query;
  query.net = args.get("net");
  query.mapper = args.get("mapper");
  query.array = args.get("array");
  query.objective = args.get("objective");
  ServiceApi api = service_from_args(args);
  const NetworkMappingResult result = api.map(query);

  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "csv") {
      write_result_csv(os, result);
    } else if (format == "json") {
      os << to_json(result) << "\n";
    } else {
      os << "network: " << result.network_name << " ("
         << result.layers.size() << " layers)\narray: "
         << result.geometry.to_string() << "   algorithm: "
         << result.algorithm;
      if (result.objective != cycles_objective().name()) {
        os << "   objective: " << result.objective;
      }
      os << "\n\n" << result_table(result);
    }
  });
  maybe_print_stats(args, api);
  return kExitOk;
}

int run_compare(int argc, const char* const* argv) {
  ArgParser args("vwsdk compare",
                 "run several algorithms on one network side by side");
  args.add_option("net", "", "model-zoo name or spec file (required)");
  add_mappers_option(args);
  args.add_option("format", "table", "output format: table, csv, or json");
  args.add_option("report", "all",
                  "table views: table1, speedups, util, or all "
                  "(format=table only)");
  add_net_options(args);
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  VWSDK_REQUIRE(!args.get("net").empty(), "--net is required");
  const std::string format =
      format_from_args(args, {"table", "csv", "json"});
  const std::string report = to_lower(args.get("report"));
  VWSDK_REQUIRE(report == "all" || report == "table1" ||
                    report == "speedups" || report == "util",
                cat("unknown --report \"", args.get("report"), "\""));

  const std::vector<std::string> mappers = mappers_from_args(args);
  // Usage errors must fire before the (possibly long) optimization runs
  // and before --out is opened; a late throw would leave a partial file.
  VWSDK_REQUIRE(format != "table" ||
                    (report != "table1" && report != "all") ||
                    mappers.size() >= 2,
                "--report table1 needs at least two mappers");

  CompareQuery query;
  query.net = args.get("net");
  query.mappers = mappers;
  query.array = args.get("array");
  query.objective = args.get("objective");
  ServiceApi api = service_from_args(args);
  const NetworkComparison cmp = api.compare(query);

  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "csv") {
      write_comparison_csv(os, cmp);
      return;
    }
    if (format == "json") {
      os << to_json(cmp) << "\n";
      return;
    }
    os << "network: " << cmp.results.front().network_name << " ("
       << cmp.results.front().layers.size() << " layers)\narray: "
       << cmp.results.front().geometry.to_string() << "   algorithms: "
       << join(mappers, ", ");
    if (cmp.results.front().objective != cycles_objective().name()) {
      os << "   objective: " << cmp.results.front().objective;
    }
    os << "\n";
    if (report == "all" || report == "table1") {
      const std::size_t n = cmp.results.size();
      os << "\nTable-I-style mapping (" << cmp.results[n - 2].algorithm
         << " vs " << cmp.results[n - 1].algorithm << "):\n"
         << render_table1(cmp.results[n - 2], cmp.results[n - 1]);
    }
    if (report == "all" || report == "speedups") {
      os << "\nPer-layer speedups vs " << cmp.results.front().algorithm
         << ":\n"
         << render_layer_speedups(cmp);
    }
    if (report == "all" || report == "util") {
      os << "\nUtilization (steady-state convention):\n"
         << render_utilization(cmp, UtilizationConvention::kSteadyState);
    }
  });
  maybe_print_stats(args, api);
  return kExitOk;
}

int run_sweep(int argc, const char* const* argv) {
  ArgParser args("vwsdk sweep",
                 "cross-product of networks x arrays x algorithms");
  args.add_option("nets", "vgg13,resnet18",
                  "comma-separated zoo names / spec files");
  args.add_option("arrays", "paper",
                  "comma-separated RxC list, or 'paper' for the paper's "
                  "five sizes");
  add_mappers_option(args);
  args.add_option("format", "table", "output format: table, csv, or json");
  add_objective_option(args);
  args.add_int_option("threads", 0,
                      "worker threads (0 = VWSDK_THREADS, then hardware)");
  args.add_option("out", "-", "output path, '-' = stdout");
  args.add_flag("intra-layer",
                "parallelize inside each layer's search instead of across "
                "layers");
  args.add_flag("stats", "print pool/cache statistics to stderr");
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  const std::string format =
      format_from_args(args, {"table", "csv", "json"});
  const std::vector<std::string> mappers = mappers_from_args(args);

  std::vector<NetworkSpec> specs;
  for (const std::string& part : split(args.get("nets"), ',')) {
    const std::string name = trim(part);
    if (!name.empty()) {
      specs.push_back(resolve_network_spec(name));
    }
  }
  VWSDK_REQUIRE(!specs.empty(), "--nets names no network");

  std::vector<ArrayGeometry> geometries;
  if (to_lower(trim(args.get("arrays"))) == "paper") {
    geometries = paper_geometries();
  } else {
    for (const std::string& part : split(args.get("arrays"), ',')) {
      const std::string text = trim(part);
      if (!text.empty()) {
        geometries.push_back(parse_geometry(text));
      }
    }
  }
  VWSDK_REQUIRE(!geometries.empty(), "--arrays names no geometry");

  // The service's pool and single-flight cache span the whole
  // cross-product: each (net, array) point fans its layers out across
  // the shared pool, and repeated (mapper, shape, array) searches --
  // common when networks share layer shapes -- are deduplicated across
  // points.  The sweep composes its own OptimizerOptions (for
  // --intra-layer) instead of calling api.compare per point.
  ServiceApi api = service_from_args(args);
  OptimizerOptions options;
  options.pool = &api.pool();
  options.cache = &api.cache();
  options.intra_layer = args.get_flag("intra-layer");
  options.objective = &objective_from_args(args);

  std::vector<NetworkComparison> sweep;
  sweep.reserve(specs.size() * geometries.size());
  for (const NetworkSpec& spec : specs) {
    for (const ArrayGeometry& geometry : geometries) {
      sweep.push_back(
          compare_mappers(mappers, spec.network, geometry, options));
    }
  }

  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "csv") {
      write_sweep_csv(os, sweep);
      return;
    }
    if (format == "json") {
      os << "[";
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        os << (i == 0 ? "" : ",") << to_json(sweep[i]);
      }
      os << "]\n";
      return;
    }
    std::vector<std::string> headers{"network", "array"};
    for (const std::string& mapper : mappers) {
      headers.push_back(cat(mapper, " cycles"));
    }
    headers.push_back(cat(mappers.back(), " speedup"));
    TextTable table(headers);
    for (const NetworkComparison& cmp : sweep) {
      std::vector<std::string> row{cmp.results.front().network_name,
                                   cmp.results.front().geometry.to_string()};
      for (const NetworkMappingResult& result : cmp.results) {
        row.push_back(std::to_string(result.total_cycles()));
      }
      row.push_back(format_fixed(
          cmp.speedup(0, static_cast<Count>(cmp.results.size() - 1)), 2));
      table.add_row(std::move(row));
    }
    os << table;
  });

  if (args.get_flag("stats")) {
    std::cerr << "sweep: " << specs.size() << " network(s) x "
              << geometries.size() << " array(s) x " << mappers.size()
              << " mapper(s), " << api.pool().size() << " thread(s); "
              << cache_stats_fragment(api.stats()) << "\n";
  }
  return kExitOk;
}

/// The chip plan's table rendering.  The score column appears only for
/// non-cycles objectives (under cycles the score IS the makespan), the
/// same convention as `map`'s table.
TextTable chip_table(const ChipPlan& plan) {
  const bool scored = plan.objective != cycles_objective().name();
  std::vector<std::string> headers{"chip",  "layer",         "groups",
                                   "tiles", "arrays",        "serial",
                                   "makespan"};
  if (scored) {
    headers.push_back(
        cat(plan.objective, " (",
            objective_by_name(plan.objective).unit(), ")"));
  }
  TextTable table(headers);
  for (std::size_t chip = 0; chip < plan.chips.size(); ++chip) {
    for (const LayerAllocation& layer : plan.chips[chip].layers) {
      std::vector<std::string> row{
          std::to_string(chip + 1), layer.layer_name,
          std::to_string(layer.groups), std::to_string(layer.tiles),
          std::to_string(layer.arrays),
          std::to_string(layer.serial_cycles),
          std::to_string(layer.makespan)};
      if (scored) {
        row.push_back(format_fixed(layer.score, 1));
      }
      table.add_row(std::move(row));
    }
    if (chip + 1 < plan.chips.size()) {
      table.add_separator();
    }
  }
  return table;
}

int run_chip(int argc, const char* const* argv) {
  ArgParser args("vwsdk chip",
                 "pipeline one network across one or more PIM chips");
  args.add_option("net", "",
                  "model-zoo name or spec file (required; --network is an "
                  "alias)");
  args.add_option("network", "", "alias for --net");
  args.add_option("mapper", "vw-sdk",
                  cat("mapping algorithm (",
                      MapperRegistry::instance().known_names(), ")"));
  args.add_int_option("arrays", 0,
                      "crossbar arrays per chip (required, >= 1)");
  args.add_int_option("chips", 0,
                      "chip budget (0 = as many as the demand needs)");
  args.add_int_option("batch", 1,
                      "inferences streamed through the pipeline");
  args.add_option("format", "table", "output format: table, csv, or json");
  add_net_options(args);
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  VWSDK_REQUIRE(args.get("net").empty() || args.get("network").empty(),
                "give --net or --network, not both");
  const std::string net =
      args.get("net").empty() ? args.get("network") : args.get("net");
  VWSDK_REQUIRE(!net.empty(), "--net is required");
  const std::string format =
      format_from_args(args, {"table", "csv", "json"});
  constexpr long long kDimMax = std::numeric_limits<Dim>::max();

  ChipQuery query;
  query.net = net;
  query.mapper = args.get("mapper");
  query.array = args.get("array");
  query.objective = args.get("objective");
  // Validate against the flag names here so usage errors read
  // "--arrays must be >= 1", then let the service re-check its own
  // preconditions (the serve daemon relies on those).
  query.arrays_per_chip =
      static_cast<Dim>(int_in_range(args, "arrays", 1, kDimMax));
  query.max_chips =
      static_cast<Dim>(int_in_range(args, "chips", 0, kDimMax));
  // A billion streamed inferences is far beyond any plausible run and
  // keeps (batch-1) * interval clear of Cycles overflow, so oversize
  // values fail here naming the flag instead of deep in checked_mul.
  query.batch = int_in_range(args, "batch", 1, 1000000000);
  ServiceApi api = service_from_args(args);
  const ChipResult chip = api.chip(query);
  const ChipPlan& plan = chip.plan;
  const Count batch = query.batch;

  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "csv") {
      write_chip_csv(os, plan);
    } else if (format == "json") {
      os << to_json(plan, batch) << "\n";
    } else {
      os << "network: " << chip.mapping.network_name << " ("
         << chip.mapping.layers.size() << " layers)\narray: "
         << chip.mapping.geometry.to_string() << "   algorithm: "
         << plan.algorithm;
      if (plan.objective != cycles_objective().name()) {
        os << "   objective: " << plan.objective;
      }
      os << "\nchips: " << plan.chips.size() << " x " << plan.arrays_per_chip
         << " arrays (" << plan.arrays_used() << " used, resident demand "
         << resident_array_demand(chip.mapping) << ")\ninterval: "
         << plan.interval() << " cycles   fill latency: "
         << plan.fill_latency() << " cycles\nspeedup: "
         << format_fixed(plan.speedup(), 2)
         << "x vs one array   balance: "
         << format_fixed(plan.balance(), 2) << "\nbatch " << batch << ": "
         << plan.batch_cycles(batch) << " cycles ("
         << format_fixed(static_cast<double>(plan.batch_cycles(batch)) /
                             static_cast<double>(batch),
                         1)
         << " cycles/inference)\n\n"
         << chip_table(plan);
    }
  });
  maybe_print_stats(args, api);
  return kExitOk;
}

/// Per-chip table of one network's traffic (the `traffic` view).
TextTable traffic_table(const NetworkTraffic& net) {
  TextTable table({"replica", "chip", "busy", "utilization", "queue peak",
                   "batches"});
  for (const ChipTraffic& chip : net.chips) {
    table.add_row({std::to_string(chip.replica), std::to_string(chip.chip),
                   with_thousands(chip.busy),
                   format_fixed(chip.utilization, 4),
                   std::to_string(chip.queue_peak),
                   std::to_string(chip.batches)});
  }
  return table;
}

void print_traffic_report(std::ostream& os, const TrafficReport& report) {
  os << "traffic: " << report.source << " arrivals";
  if (report.source == "poisson") {
    os << ", rate " << format_fixed(report.rate, 4) << "/Mcycle, seed "
       << report.seed;
  }
  os << ", " << with_thousands(report.duration)
     << " cycles simulated\nbatching: window " << report.batch_window
     << " cycles, max batch " << report.max_batch << ", queue ";
  if (report.max_queue > 0) {
    os << "bound " << report.max_queue << "\n";
  } else {
    os << "unbounded\n";
  }
  for (const NetworkTraffic& net : report.networks) {
    os << "\nnetwork: " << net.network << "   " << net.replicas
       << " replica(s) x " << net.chips_per_replica << " chip(s) x "
       << net.arrays_per_chip << " arrays (" << net.array << ", "
       << net.algorithm << ")\ninterval: " << net.interval
       << " cycles   fill latency: " << net.fill_latency
       << " cycles\noffered: " << format_fixed(net.offered, 2)
       << "/Mcycle   sustained: " << format_fixed(net.sustained, 2)
       << "/Mcycle   capacity: " << format_fixed(net.capacity, 2)
       << "/Mcycle\narrivals: " << net.arrivals << "   completions: "
       << net.completions << "   in flight: " << net.in_flight
       << "   rejected: " << net.rejected << "\nlatency: p50 "
       << with_thousands(net.p50) << "   p95 " << with_thousands(net.p95)
       << "   p99 " << with_thousands(net.p99) << "   p99.9 "
       << with_thousands(net.p999) << "   (min "
       << with_thousands(net.latency_min) << ", max "
       << with_thousands(net.latency_max) << ")\nmean: latency "
       << format_fixed(net.mean_latency, 1) << "   wait "
       << format_fixed(net.mean_wait, 1) << "   batch "
       << format_fixed(net.mean_batch, 2) << "\n\n" << traffic_table(net);
  }
}

void print_capacity(std::ostream& os, const CapacityResult& capacity) {
  os << "capacity: smallest farm with p99 <= "
     << with_thousands(capacity.slo_p99) << " cycles at rate "
     << format_fixed(capacity.rate, 4) << "/Mcycle\nanswer: "
     << capacity.replicas << " replica(s) = " << capacity.chips
     << " chip(s), simulated p99 " << with_thousands(capacity.p99)
     << " cycles\n";
  if (capacity.lower_replicas > 0) {
    os << "proof: " << capacity.lower_replicas
       << " replica(s) fail the SLO (p99 "
       << with_thousands(capacity.lower_p99) << " cycles)\n\n";
  } else {
    os << "proof: a farm needs at least one replica\n\n";
  }
  print_traffic_report(os, capacity.report);
}

/// --rate is the CLI's one floating-point flag; ArgParser stores
/// strings, so parse and validate here (full consumption, finite, >= 0).
double parse_rate(const std::string& text) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (text.empty() || consumed != text.size() || !std::isfinite(value) ||
      value < 0.0) {
    throw InvalidArgument(cat("--rate must be a finite number >= 0 (got \"",
                              text, "\")"));
  }
  return value;
}

int run_traffic(int argc, const char* const* argv) {
  ArgParser args("vwsdk traffic",
                 "simulate request traffic against pipelined chip farms");
  args.add_option("net", "",
                  "comma-separated model-zoo names or spec files (required)");
  args.add_option("mapper", "vw-sdk",
                  cat("mapping algorithm (",
                      MapperRegistry::instance().known_names(), ")"));
  args.add_int_option("arrays", 0,
                      "crossbar arrays per chip (required, >= 1)");
  args.add_int_option("chips", 0,
                      "chip budget per network (0 = as many as the demand "
                      "needs)");
  args.add_int_option("replicas", 1, "pipeline replicas per network");
  args.add_option("rate", "0",
                  "Poisson arrivals per network per 1e6 cycles");
  args.add_int_option("duration", 10000000,
                      "simulated horizon in cycles (Poisson mode)");
  args.add_int_option("seed", 42, "arrival-stream seed");
  args.add_int_option("window", 0, "cycles a replica holds a batch open");
  args.add_int_option("max-batch", 1,
                      "largest batch a replica serves at once");
  args.add_int_option("max-queue", 0,
                      "per-replica queue bound (0 = unbounded)");
  args.add_option("trace", "",
                  "arrival-trace file, CSV or JSON (replaces --rate)");
  args.add_int_option("slo-p99", 0,
                      "capacity mode: smallest chip count with p99 <= this");
  args.add_option("format", "table", "output format: table, csv, or json");
  add_net_options(args);
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  VWSDK_REQUIRE(!args.get("net").empty(), "--net is required");
  const std::string format =
      format_from_args(args, {"table", "csv", "json"});
  constexpr long long kDimMax = std::numeric_limits<Dim>::max();

  TrafficQuery query;
  query.net = args.get("net");
  query.mapper = args.get("mapper");
  query.array = args.get("array");
  query.objective = args.get("objective");
  query.arrays_per_chip =
      static_cast<Dim>(int_in_range(args, "arrays", 1, kDimMax));
  query.max_chips =
      static_cast<Dim>(int_in_range(args, "chips", 0, kDimMax));
  query.replicas = int_in_range(args, "replicas", 1, 100000);
  query.rate = parse_rate(args.get("rate"));
  query.duration = int_in_range(args, "duration", 1, 1000000000000LL);
  query.seed = static_cast<std::uint64_t>(int_in_range(args, "seed", 0));
  query.batch_window = int_in_range(args, "window", 0, 1000000000000LL);
  query.max_batch = int_in_range(args, "max-batch", 1, 1000000000);
  query.max_queue = int_in_range(args, "max-queue", 0, 1000000000);
  query.trace = args.get("trace");
  query.slo_p99 = int_in_range(args, "slo-p99", 0, 1000000000000LL);

  ServiceApi api = service_from_args(args);
  const TrafficResult traffic = api.traffic(query);

  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "csv") {
      write_traffic_csv(os, traffic.report);
    } else if (format == "json") {
      os << (traffic.capacity_mode ? to_json(traffic.capacity)
                                   : to_json(traffic.report))
         << "\n";
    } else if (traffic.capacity_mode) {
      print_capacity(os, traffic.capacity);
    } else {
      print_traffic_report(os, traffic.report);
    }
  });
  maybe_print_stats(args, api);
  return kExitOk;
}

/// The per-layer table of a verification result (the `verify` view).
TextTable verify_table(const NetworkVerifyResult& result) {
  TextTable table({"#", "layer", "groups", "mapping (PWxICtxOCt)", "exact",
                   "cycles (run/analytic)", "max_abs_err"});
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const LayerVerification& lv = result.layers[i];
    table.add_row({std::to_string(i + 1), lv.layer.name,
                   std::to_string(lv.layer.groups),
                   lv.decision.table_entry(),
                   lv.report.exact_match ? "yes" : "NO",
                   cat(lv.report.executed_cycles, "/",
                       lv.report.analytic_cycles,
                       lv.report.cycles_match ? "" : " MISMATCH"),
                   format_fixed(lv.report.max_abs_error, 3)});
  }
  return table;
}

/// `vwsdk verify`: map each layer, build the plan, execute it on the
/// crossbar simulator with deterministic integer tensors, and compare
/// the OFM against the selected reference backend.  Grouped layers
/// verify one group's sub-convolution (all groups are identical).
/// Any mismatch -- OFM or cycle count -- exits 1 after the output.
int run_verify(int argc, const char* const* argv) {
  ArgParser args("vwsdk verify",
                 "functionally verify mapped layers on the crossbar "
                 "simulator");
  args.add_option("net", "", "model-zoo name or spec file (required)");
  args.add_option("mapper", "vw-sdk",
                  cat("mapping algorithm (",
                      MapperRegistry::instance().known_names(), ")"));
  add_ref_backend_option(args);
  args.add_int_option("seed", 42, "seed for the integer test tensors");
  args.add_option("array", "",
                  "PIM array geometry RxC (default: the spec's array, "
                  "else 512x512)");
  args.add_option("format", "table", "output format: table or json");
  args.add_option("out", "-", "output path, '-' = stdout");
  args.add_flag("stats", "print pool/cache statistics to stderr");
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  VWSDK_REQUIRE(!args.get("net").empty(), "--net is required");
  const std::string format = format_from_args(args, {"table", "json"});

  VerifyQuery query;
  query.net = args.get("net");
  query.mapper = args.get("mapper");
  query.array = args.get("array");
  query.ref_backend = args.get("ref-backend");
  query.seed = static_cast<std::uint64_t>(int_in_range(args, "seed", 0));
  ServiceApi api(0);
  const NetworkVerifyResult result = api.verify(query);

  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "json") {
      os << to_json(result) << "\n";
      return;
    }
    os << "network: " << result.network_name << " ("
       << result.layers.size() << " layers)\narray: "
       << result.geometry.to_string() << "   algorithm: "
       << result.algorithm << "   backend: " << result.backend << "\n\n"
       << verify_table(result) << "\n"
       << (result.all_verified()
               ? "all layers verified EXACT against the reference backend"
               : "verification FAILED (see table)")
       << "\n";
  });
  maybe_print_stats(args, api);
  if (!result.all_verified()) {
    std::cerr << "error: functional verification failed\n";
    return kExitError;
  }
  return kExitOk;
}

int run_mappers(int argc, const char* const* argv) {
  ArgParser args("vwsdk mappers", "list the registered mapping algorithms");
  args.add_option("format", "table", "output format: table or json");
  args.add_option("out", "-", "output path, '-' = stdout");
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  const std::string format = format_from_args(args, {"table", "json"});

  const MapperRegistry& registry = MapperRegistry::instance();
  with_output(args.get("out"), [&](std::ostream& os) {
    if (format == "json") {
      os << to_json(registry) << "\n";
      return;
    }
    TextTable table(
        {"name", "aliases", "capabilities", "description"});
    for (const std::string& name : registry.names()) {
      const MapperInfo& info = registry.info(name);
      std::vector<std::string> caps;
      if (info.capabilities.objective_aware) {
        caps.emplace_back("objective-aware");
      }
      if (info.capabilities.parallel_search) {
        caps.emplace_back("parallel");
      }
      if (info.capabilities.exhaustive) {
        caps.emplace_back("exhaustive");
      }
      if (!info.capabilities.grouped) {
        caps.emplace_back("no-grouped");
      }
      table.add_row({info.name, join(info.aliases, ", "),
                     caps.empty() ? "-" : join(caps, ", "),
                     info.description});
    }
    os << table;
  });
  return kExitOk;
}

int run_zoo(int argc, const char* const* argv) {
  ArgParser args("vwsdk zoo",
                 "list built-in networks or export one as a spec file");
  args.add_option("export", "",
                  "network to export as a spec (zoo name or spec file)");
  args.add_option("format", "json", "spec format for --export: json or csv");
  args.add_option("array", "",
                  "array hint to embed in the exported spec, RxC");
  args.add_option("out", "-", "output path, '-' = stdout");
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);
  const std::string format = format_from_args(args, {"json", "csv"});

  if (args.get("export").empty()) {
    with_output(args.get("out"), [&](std::ostream& os) {
      TextTable table({"name", "layers", "weights"});
      for (const std::string& name : model_names()) {
        const Network net = model_by_name(name);
        table.add_row({name, std::to_string(net.layer_count()),
                       with_thousands(net.total_weights())});
      }
      os << table;
    });
    return kExitOk;
  }

  const NetworkSpec spec = resolve_network_spec(args.get("export"));
  std::string array = args.get("array");
  if (array.empty()) {
    array = spec.array;
  }
  if (!array.empty()) {
    (void)parse_geometry(array);  // validate the hint before embedding it
  }
  with_output(args.get("out"), [&](std::ostream& os) {
    os << (format == "csv" ? to_spec_csv(spec.network, array)
                           : to_spec_json(spec.network, array));
  });
  return kExitOk;
}

int run_serve(int argc, const char* const* argv) {
  ArgParser args("vwsdk serve",
                 "answer NDJSON requests on stdin or a Unix socket as a "
                 "long-running daemon (protocol: docs/SERVE.md)");
  args.add_option("socket", "",
                  "Unix domain socket path (default: serve stdin/stdout)");
  args.add_int_option("max-inflight", 4,
                      "requests executing at once (>= 1)");
  args.add_int_option("max-queue", 16,
                      "accepted requests waiting beyond that (>= 0)");
  args.add_int_option("threads", 0,
                      "worker threads (0 = VWSDK_THREADS, then hardware)");
  if (!args.parse(argc, argv)) {
    return kExitOk;
  }
  require_no_positional(args);

  ServeOptions options;
  options.socket_path = args.get("socket");
  options.max_inflight =
      static_cast<int>(int_in_range(args, "max-inflight", 1, 1024));
  options.max_queue =
      static_cast<int>(int_in_range(args, "max-queue", 0, 1 << 20));
  options.threads = static_cast<int>(
      int_in_range(args, "threads", 0, std::numeric_limits<int>::max()));
  return run_server(options);
}

/// The global help text.  The command list is derived from the
/// SubcommandSet and the algorithm / objective lists from
/// MapperRegistry / objective_names() at runtime, so registering a new
/// subcommand or mapper updates the help (and the `cli.help_matches_doc`
/// ctest then forces docs/CLI.md to follow).
std::string global_help(const SubcommandSet& commands) {
  return cat(
      R"(vwsdk - VW-SDK convolutional weight mapping toolkit

Usage:
  vwsdk <command> [options]
  vwsdk <command> --help
  vwsdk --help | --version

Commands:
)",
      commands.command_list(), R"(
Networks (--net / --nets) are model-zoo names (vgg13, resnet18, vgg16,
alexnet, lenet5, stress) or network-spec files in the JSON/CSV formats
of docs/FORMATS.md.  Array geometries are "RxC" (rows x columns);
when --array is omitted, the spec's own "array" entry applies, then
512x512.

Mapping algorithms (--mapper / --mappers; `vwsdk mappers` describes them):
  )",
      MapperRegistry::instance().known_names(), R"(
Search objectives (--objective; see docs/OBJECTIVES.md):
  )",
      join(objective_names(), ", "), R"(

Exit codes: 0 success, 1 runtime error, 2 usage error.
)");
}

}  // namespace

int main(int argc, char** argv) {
  return run_cli_main([&]() -> int {
    SubcommandSet commands;
    commands.add({"map",
                  "map every layer of one network with one algorithm",
                  run_map});
    commands.add({"compare",
                  "run several algorithms on one network side by side",
                  run_compare});
    commands.add({"sweep", "cross-product of networks x arrays x algorithms",
                  run_sweep});
    commands.add({"chip",
                  "pipeline one network across one or more PIM chips",
                  run_chip});
    commands.add({"traffic",
                  "simulate request traffic against pipelined chip farms",
                  run_traffic});
    commands.add({"verify",
                  "functionally verify mapped layers on the crossbar "
                  "simulator",
                  run_verify});
    commands.add({"mappers", "list the registered mapping algorithms",
                  run_mappers});
    commands.add({"zoo",
                  "list built-in networks or export one as a spec file",
                  run_zoo});
    commands.add({"serve",
                  "answer NDJSON requests as a long-running daemon",
                  run_serve});
    return commands.dispatch(
        argc, argv, [&] { return global_help(commands); },
        cat("vwsdk ", VWSDK_VERSION));
  });
}
